//! Event-driven dataflow simulation of a circuit on a
//! microarchitecture (§5.2's methodology).
//!
//! Gates execute in dataflow order on the discrete-event core of
//! [`crate::engine`]: a gate becomes ready when its DAG predecessors
//! finish, waits for its operands to be moved together (the
//! architecture's movement policy), waits for its encoded ancillae
//! (the architecture's supply pools), then executes for its data
//! latency plus the trailing QEC interaction.
//!
//! ## The overlap rule
//!
//! All *waits* of one gate overlap; all *work* is serial. Concretely,
//! a gate with dataflow readiness `ready` starts executing at
//!
//! ```text
//! start = max(moved_at, avail, delivered_at)
//! ```
//!
//! where `moved_at` is when its operand movement completes (teleports
//! and ballistic hops, plus — on CQLA — this gate's own cache-miss
//! transfers serialized through the hierarchy port), `avail` is when
//! its pools have produced the ancillae it consumes (drawn at `ready`;
//! production continues to accrue while operands move), and
//! `delivered_at` is when remotely-generated ancillae have crossed the
//! hierarchy port (CQLA only; queues behind this gate's own miss
//! transfers). Each branch is measured from `ready`, charged once, and
//! combined by `max` — a gate is never charged another gate's port
//! backlog twice, and a supply stall is never added on top of a
//! movement wait it overlapped with.
//!
//! Diagnostics follow the same split: `movement_us` accumulates
//! `max(moved_at, delivered_at) - ready` (transport, including port
//! queueing) and `supply_stall_us` accumulates `avail - ready`
//! (production shortfall).
//!
//! ## Ancilla pools are token buckets, not reservoirs
//!
//! Encoded ancillae cannot be stockpiled indefinitely: an idle ancilla
//! must itself be error-corrected, and factory output ports hold only a
//! few blocks. Pools therefore accumulate at the factory rate up to a
//! small *buffer* and waste production beyond it. This is the paper's
//! central argument against dedicated generation (§5.2: "many ancilla
//! generators are idle much of the time in QLA when they could be used
//! to feed nearby data need"): a per-qubit QLA site can buffer about
//! one QEC step's worth, while a shared factory farm's output is
//! absorbed by whichever qubit needs it next. The zero and pi/8
//! streams of a pool accrue independently (distinct factories; see
//! [`crate::engine::Pool`]).
//!
//! ## Architecture-specific behavior
//!
//! Each microarchitecture is a [movement policy](MovePolicy) plus a
//! pool layout over the shared event engine:
//!
//! * **QLA**: per-qubit pools (simple factories), tiny buffers; every
//!   two-qubit gate teleports the operands together and back home.
//! * **CQLA**: gates run inside the compute cache, which inherits the
//!   QLA movement discipline internally (§5.3: compute regions mix
//!   data with generators, so data qubits "generally require
//!   teleportation for movement"). Misses teleport the operand in,
//!   evictions write back, and all memory<->cache transfers serialize
//!   on the hierarchy port. Factory area beyond what fits alongside
//!   the cache (one pipelined factory per slot) produces *remote*
//!   ancillae that arrive by teleportation: the remote share of each
//!   gate's zeros crosses the port (one teleport per block pair) and
//!   consumes twice the zeros for that share (§5.3:
//!   QEC-during-teleportation "requires twice as many encoded
//!   ancillae").
//! * **Fully-Multiplexed**: one shared pool, ballistic movement.
//! * **Qalypso**: per-tile shared pools with output ports at the data
//!   region (no delivery latency), ballistic movement within tiles,
//!   teleportation between tiles.
//!
//! ## Determinism
//!
//! Ready events pop in ascending `(time, gate index)` order (see
//! [`crate::engine::EventQueue`]), every resource is a deterministic
//! function of its call sequence, and nothing depends on thread
//! timing, so [`SimOutcome`] is a pure function of
//! `(circuit, arch, factory_area)` — bit-identical across repeated
//! runs and across parallel sweeps at any thread count.

use crate::engine::{EventQueue, Pool, SerialResource};
use crate::interconnect::Interconnect;
use crate::machine::Arch;
use qods_circuit::circuit::Circuit;
use qods_circuit::dag::Dag;
use qods_circuit::latency_model::CharacterizationModel;
use qods_factory::supply::{FactoryFarm, ZeroFactoryKind};

/// Zero-ancilla buffer of a dedicated QLA site (about one QEC step).
const SITE_ZERO_BUFFER: f64 = 2.0;
/// pi/8 buffer of a dedicated site.
const SITE_PI8_BUFFER: f64 = 1.0;
/// Zero buffer of a shared factory farm's output ports.
const SHARED_ZERO_BUFFER: f64 = 32.0;
/// pi/8 buffer of a shared farm.
const SHARED_PI8_BUFFER: f64 = 8.0;

/// Result of one architectural simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOutcome {
    /// Total execution time (us).
    pub makespan_us: f64,
    /// Teleport operations performed.
    pub teleports: u64,
    /// CQLA cache misses (0 for other architectures).
    pub cache_misses: u64,
    /// Total movement latency charged across gates (diagnostics).
    pub movement_us: f64,
    /// Total ancilla-supply stall across gates (diagnostics).
    pub supply_stall_us: f64,
}

/// Everything about a circuit that every `simulate` call on it shares:
/// the dependency DAG (as successor lists), per-gate operands and
/// execution latencies, the ancilla-demand mix, and the speed-of-data
/// makespan. A Fig 15 sweep runs ~50 simulations per benchmark; this
/// is built once and borrowed by all of them (and by all sweep worker
/// threads — it is immutable after construction).
#[derive(Debug, Clone)]
pub struct SimContext<'c> {
    circuit: &'c Circuit,
    model: CharacterizationModel,
    link: Interconnect,
    /// Per-gate operand lists, inline (gates touch at most 3 qubits).
    operands: Vec<([u32; 3], u8)>,
    /// Per-gate execution time: data latency + trailing QEC interact.
    exec_us: Vec<f64>,
    /// Per-gate pi/8-ancilla demand (0.0 or 1.0).
    pi8_demand: Vec<f64>,
    /// Successor adjacency, flattened: gate `i`'s successors are
    /// `succ_dat[succ_off[i]..succ_off[i + 1]]`.
    succ_off: Vec<u32>,
    succ_dat: Vec<u32>,
    /// Predecessor counts (initial indegrees).
    indegree0: Vec<u32>,
    /// Total encoded-zero demand of the circuit (2 per operand touch).
    zeros_total: f64,
    /// Total pi/8 demand.
    pi8_total: f64,
    /// Speed-of-data makespan (us) — the demand-rate denominator.
    sod_makespan_us: f64,
}

impl<'c> SimContext<'c> {
    /// Characterizes `circuit` once for any number of simulations.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is not lowered (contains non-physical
    /// gates).
    pub fn new(circuit: &'c Circuit) -> Self {
        let model = CharacterizationModel::ion_trap();
        let link = Interconnect::ion_trap();
        let gates = circuit.gates();
        let dag = Dag::build(circuit);

        let mut operands = Vec::with_capacity(gates.len());
        let mut exec_us = Vec::with_capacity(gates.len());
        let mut pi8_demand = Vec::with_capacity(gates.len());
        let mut zeros_total = 0.0f64;
        let mut pi8_total = 0.0f64;
        for g in gates {
            let qs = g.qubits();
            let mut ops = [0u32; 3];
            for (slot, &q) in ops.iter_mut().zip(&qs) {
                *slot = q as u32;
            }
            operands.push((ops, qs.len() as u8));
            exec_us.push(model.data_latency(g) + model.qec_interact());
            let pi8 = if g.needs_pi8_ancilla() { 1.0 } else { 0.0 };
            pi8_demand.push(pi8);
            pi8_total += pi8;
            zeros_total += 2.0 * qs.len() as f64;
        }

        let mut indegree0 = vec![0u32; gates.len()];
        let mut succ_count = vec![0u32; gates.len()];
        for (i, slot) in indegree0.iter_mut().enumerate() {
            let preds = dag.preds(i);
            *slot = preds.len() as u32;
            for &p in preds {
                succ_count[p] += 1;
            }
        }
        let mut succ_off = Vec::with_capacity(gates.len() + 1);
        let mut acc = 0u32;
        for &c in &succ_count {
            succ_off.push(acc);
            acc += c;
        }
        succ_off.push(acc);
        let mut succ_dat = vec![0u32; acc as usize];
        let mut cursor: Vec<u32> = succ_off[..gates.len()].to_vec();
        for i in 0..gates.len() {
            for &p in dag.preds(i) {
                succ_dat[cursor[p] as usize] = i as u32;
                cursor[p] += 1;
            }
        }

        // The speed-of-data makespan reuses the DAG just built instead
        // of lowering a second one.
        let sod_makespan_us =
            qods_circuit::schedule::Schedule::speed_of_data_on(&dag, circuit, &model).makespan_us;

        SimContext {
            circuit,
            model,
            link,
            operands,
            exec_us,
            pi8_demand,
            succ_off,
            succ_dat,
            indegree0,
            zeros_total,
            pi8_total,
            sod_makespan_us,
        }
    }

    /// The circuit this context characterizes.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// pi/8-to-zero demand ratio (how factory area splits between the
    /// two chains, as in Table 9).
    fn demand_ratio(&self) -> f64 {
        if self.zeros_total > 0.0 {
            self.pi8_total / self.zeros_total
        } else {
            0.0
        }
    }

    /// Simulates the context's circuit on `arch` with `factory_area`
    /// macroblocks of total ancilla-generation hardware.
    ///
    /// # Panics
    ///
    /// Panics if `factory_area <= 0`.
    pub fn simulate(&self, arch: Arch, factory_area: f64) -> SimOutcome {
        assert!(factory_area > 0.0, "factory area must be positive");
        let n = self.circuit.n_qubits();
        let ratio = self.demand_ratio();

        let (mut supply, mut policy) = build_arch(self, arch, factory_area, n, ratio);

        let n_gates = self.operands.len();
        let mut indegree = self.indegree0.clone();
        let mut ready_time = vec![0.0f64; n_gates];
        let mut queue = EventQueue::new();
        for (i, &deg) in indegree.iter().enumerate() {
            if deg == 0 {
                queue.push(0.0, i);
            }
        }

        let mut makespan = 0.0f64;
        let mut teleports = 0u64;
        let mut cache_misses = 0u64;
        let mut movement_us = 0.0f64;
        let mut supply_stall_us = 0.0f64;
        let zeros_per_qec = self.model.zeros_per_qec() as f64;

        while let Some((ready, i)) = queue.pop() {
            let (ops, n_ops) = self.operands[i];
            let ops = &ops[..n_ops as usize];

            // Movement: bring the operands together (and, on CQLA,
            // deliver the remote ancilla share through the port).
            let mv = policy.movement(ready, ops);
            teleports += mv.teleports;
            cache_misses += mv.cache_misses;

            // Supply: draw this gate's encoded ancillae at `ready`
            // (production keeps accruing while operands move).
            // Teleports burn EPR pairs of encoded blocks on top of the
            // QEC zeros, spread over the operands' pools; the remote
            // share of CQLA zeros doubles (QEC during teleportation).
            let zeros_per_qubit = zeros_per_qec * mv.zero_multiplier
                + 2.0 * mv.teleports as f64 / ops.len().max(1) as f64;
            let pi8 = self.pi8_demand[i];
            let mut avail = ready;
            for (j, &q) in ops.iter().enumerate() {
                let pi8_here = if j == 0 { pi8 } else { 0.0 };
                let a = supply.consume(q as usize, zeros_per_qubit, pi8_here, ready);
                avail = avail.max(a);
            }

            let transport_done = mv.moved_at.max(mv.delivered_at);
            movement_us += (transport_done - ready).max(0.0);
            supply_stall_us += (avail - ready).max(0.0);

            // All waits overlap; execution is serial after the last.
            let start = transport_done.max(avail).max(ready);
            let e = start + self.exec_us[i];
            makespan = makespan.max(e);
            let succs = &self.succ_dat[self.succ_off[i] as usize..self.succ_off[i + 1] as usize];
            for &s in succs {
                let s = s as usize;
                ready_time[s] = ready_time[s].max(e);
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(ready_time[s], s);
                }
            }
        }

        SimOutcome {
            makespan_us: makespan,
            teleports,
            cache_misses,
            movement_us,
            supply_stall_us,
        }
    }
}

/// How one gate's movement resolved (absolute times).
struct Movement {
    /// When the operands are together (>= ready).
    moved_at: f64,
    /// When remotely-generated ancillae have arrived (>= ready;
    /// `ready` itself when the architecture delivers locally).
    delivered_at: f64,
    /// Teleports this gate performed (each burns one EPR pair = 2
    /// encoded zeros, charged to the operands' pools).
    teleports: u64,
    /// Cache misses this gate incurred (CQLA only).
    cache_misses: u64,
    /// Multiplier on the gate's QEC-zero demand (CQLA charges the
    /// remote share twice; everyone else 1.0).
    zero_multiplier: f64,
}

impl Movement {
    fn local(moved_at: f64, teleports: u64) -> Movement {
        Movement {
            moved_at,
            delivered_at: moved_at,
            teleports,
            cache_misses: 0,
            zero_multiplier: 1.0,
        }
    }
}

/// An architecture's movement discipline over the event engine. One
/// instance lives per `simulate` call and is invoked once per gate, in
/// event order.
trait MovePolicy {
    fn movement(&mut self, ready: f64, ops: &[u32]) -> Movement;
}

/// QLA / GQLA: every two-qubit gate teleports the operands together
/// and back home for QEC.
struct QlaMove {
    teleport_us: f64,
}

impl MovePolicy for QlaMove {
    fn movement(&mut self, ready: f64, ops: &[u32]) -> Movement {
        if ops.len() >= 2 {
            Movement::local(ready + 2.0 * self.teleport_us, 2)
        } else {
            Movement::local(ready, 0)
        }
    }
}

/// Fully-Multiplexed: ballistic movement across the data region.
struct BallisticMove {
    hop_us: f64,
}

impl MovePolicy for BallisticMove {
    fn movement(&mut self, ready: f64, ops: &[u32]) -> Movement {
        if ops.len() >= 2 {
            Movement::local(ready + self.hop_us, 0)
        } else {
            Movement::local(ready, 0)
        }
    }
}

/// Qalypso: ballistic within a tile, teleport between tiles.
struct QalypsoMove {
    tile_qubits: usize,
    intra_tile_us: f64,
    teleport_us: f64,
}

impl MovePolicy for QalypsoMove {
    fn movement(&mut self, ready: f64, ops: &[u32]) -> Movement {
        if ops.len() < 2 {
            return Movement::local(ready, 0);
        }
        let tile0 = ops[0] as usize / self.tile_qubits;
        let same_tile = ops.iter().all(|&q| q as usize / self.tile_qubits == tile0);
        if same_tile {
            Movement::local(ready + self.intra_tile_us, 0)
        } else {
            Movement::local(ready + self.teleport_us, 1)
        }
    }
}

/// CQLA: an LRU compute cache over a serialized hierarchy port, plus
/// remote-ancilla delivery through the same port.
struct CqlaMove {
    cache: LruCache,
    port: SerialResource,
    teleport_us: f64,
    /// Fraction of consumed zeros generated memory-side (must cross
    /// the port by teleportation).
    remote_fraction: f64,
}

impl MovePolicy for CqlaMove {
    fn movement(&mut self, ready: f64, ops: &[u32]) -> Movement {
        let mut teleports = 0u64;
        let mut cache_misses = 0u64;
        // Operand misses: teleport in (plus writeback on eviction),
        // serialized on the hierarchy port in gate-event order. The
        // gate waits for *its own* transfers to land; the port
        // calendar makes them queue behind earlier gates' backlog
        // exactly once.
        let mut operands_at = ready;
        for &q in ops {
            let q = q as usize;
            if self.cache.contains(q) {
                self.cache.touch(q);
            } else {
                cache_misses += 1;
                teleports += 1;
                let mut transfer = self.teleport_us;
                if self.cache.insert(q, ops) {
                    // Writeback of the evicted qubit.
                    transfer += self.teleport_us;
                    teleports += 1;
                }
                operands_at = self.port.acquire(ready, transfer);
            }
        }
        // Intra-cache movement uses teleportation: data in the compute
        // region sits interleaved with generators (§5.3); operands
        // meet and return. Serial after their arrival.
        let moved_at = if ops.len() >= 2 {
            teleports += 2;
            operands_at + 2.0 * self.teleport_us
        } else {
            operands_at
        };
        // Remote ancilla delivery: the memory-side share of this
        // gate's encoded zeros crosses the hierarchy port (one
        // teleport per block pair), queued behind this gate's own miss
        // transfers; it overlaps the intra-cache movement.
        let remote_zeros = self.remote_fraction * 2.0 * ops.len() as f64;
        let delivered_at = if remote_zeros > 0.0 {
            self.port
                .acquire(ready, remote_zeros / 2.0 * self.teleport_us)
        } else {
            ready
        };
        Movement {
            moved_at,
            delivered_at,
            teleports,
            cache_misses,
            // The remote share is consumed during teleportation, which
            // "requires twice as many encoded ancillae" (§5.3).
            zero_multiplier: 1.0 + self.remote_fraction,
        }
    }
}

/// The supply side: per-architecture pool layout with a static
/// qubit->pool map.
struct Supply {
    pools: Vec<Pool>,
    map: PoolMap,
}

enum PoolMap {
    /// QLA: one pool per qubit.
    PerQubit,
    /// FM / CQLA: one shared pool.
    Single,
    /// Qalypso: one pool per `tile_qubits`-qubit tile.
    Tile(usize),
}

impl Supply {
    fn consume(&mut self, qubit: usize, zeros: f64, pi8: f64, t: f64) -> f64 {
        let idx = match self.map {
            PoolMap::PerQubit => qubit,
            PoolMap::Single => 0,
            PoolMap::Tile(tile) => qubit / tile,
        };
        self.pools[idx].consume(zeros, pi8, t)
    }
}

/// Builds the pool layout and movement policy for one architecture at
/// one factory area.
fn build_arch(
    ctx: &SimContext<'_>,
    arch: Arch,
    factory_area: f64,
    n: usize,
    ratio: f64,
) -> (Supply, Box<dyn MovePolicy>) {
    let link = &ctx.link;
    match arch {
        Arch::Qla => {
            let per_site = factory_area / n as f64;
            let farm = FactoryFarm::bandwidth_for_area(per_site, ratio, ZeroFactoryKind::Simple);
            let pool = Pool::new(
                farm.zero_bandwidth,
                farm.pi8_bandwidth,
                SITE_ZERO_BUFFER,
                SITE_PI8_BUFFER,
            );
            (
                Supply {
                    pools: vec![pool; n],
                    map: PoolMap::PerQubit,
                },
                Box::new(QlaMove {
                    teleport_us: link.teleport_us(),
                }),
            )
        }
        Arch::Cqla { cache_slots } => {
            // Compute cells carry one simple factory's worth of local
            // generation each (Fig 14a cells); everything else lives
            // memory-side and its products must cross the hierarchy
            // port to reach the data.
            let local_area = ((cache_slots as f64) * 90.0).min(factory_area);
            let local = FactoryFarm::bandwidth_for_area(local_area, ratio, ZeroFactoryKind::Simple);
            let remote_area = (factory_area - local_area).max(0.0);
            let remote = FactoryFarm::bandwidth_for_area(
                remote_area.max(1e-9),
                ratio,
                ZeroFactoryKind::Pipelined,
            );
            let pool = Pool::new(
                local.zero_bandwidth + remote.zero_bandwidth,
                local.pi8_bandwidth + remote.pi8_bandwidth,
                SHARED_ZERO_BUFFER,
                SHARED_PI8_BUFFER,
            );
            // Fraction of consumed ancillae that local (cache-side)
            // generation cannot cover at the speed-of-data demand
            // rate; the rest cross the hierarchy port by teleportation
            // ("cache misses are still incurred to bring ancillae to
            // data", §5.2).
            let demand_per_ms = if ctx.sod_makespan_us > 0.0 {
                ctx.zeros_total / (ctx.sod_makespan_us / 1000.0)
            } else {
                0.0
            };
            let remote_fraction = if demand_per_ms > 0.0 {
                (1.0 - local.zero_bandwidth / demand_per_ms).clamp(0.0, 1.0)
            } else {
                0.0
            };
            (
                Supply {
                    pools: vec![pool],
                    map: PoolMap::Single,
                },
                Box::new(CqlaMove {
                    cache: LruCache::new(cache_slots, 0..n),
                    port: SerialResource::new(),
                    teleport_us: link.teleport_us(),
                    remote_fraction,
                }),
            )
        }
        Arch::FullyMultiplexed => {
            let farm =
                FactoryFarm::bandwidth_for_area(factory_area, ratio, ZeroFactoryKind::Pipelined);
            let pool = Pool::new(
                farm.zero_bandwidth,
                farm.pi8_bandwidth,
                SHARED_ZERO_BUFFER,
                SHARED_PI8_BUFFER,
            );
            (
                Supply {
                    pools: vec![pool],
                    map: PoolMap::Single,
                },
                Box::new(BallisticMove {
                    hop_us: link.avg_ballistic_us(n),
                }),
            )
        }
        Arch::Qalypso { tile_qubits } => {
            let tiles = n.div_ceil(tile_qubits).max(1);
            let farm = FactoryFarm::bandwidth_for_area(
                factory_area / tiles as f64,
                ratio,
                ZeroFactoryKind::Pipelined,
            );
            let pool = Pool::new(
                farm.zero_bandwidth,
                farm.pi8_bandwidth,
                SHARED_ZERO_BUFFER,
                SHARED_PI8_BUFFER,
            );
            (
                Supply {
                    pools: vec![pool; tiles],
                    map: PoolMap::Tile(tile_qubits),
                },
                Box::new(QalypsoMove {
                    tile_qubits,
                    intra_tile_us: link.avg_ballistic_us(tile_qubits.min(n)),
                    teleport_us: link.teleport_us(),
                }),
            )
        }
    }
}

/// A simple LRU set for the CQLA compute cache.
#[derive(Debug, Clone)]
struct LruCache {
    slots: usize,
    /// Most recent at the back.
    order: Vec<usize>,
}

impl LruCache {
    fn new(slots: usize, initial: impl Iterator<Item = usize>) -> Self {
        let mut order: Vec<usize> = initial.take(slots).collect();
        order.reverse(); // first qubits become least recent
        LruCache { slots, order }
    }

    fn contains(&self, q: usize) -> bool {
        self.order.contains(&q)
    }

    fn touch(&mut self, q: usize) {
        self.order.retain(|&x| x != q);
        self.order.push(q);
    }

    /// Inserts `q`; returns true when an eviction (writeback) was
    /// needed. Qubits in `pinned` are not evicted.
    fn insert(&mut self, q: usize, pinned: &[u32]) -> bool {
        debug_assert!(!self.contains(q));
        let mut evicted = false;
        if self.order.len() >= self.slots {
            let victim = self
                .order
                .iter()
                .position(|&x| !pinned.contains(&(x as u32)))
                .expect("cache larger than one gate's operand set");
            self.order.remove(victim);
            evicted = true;
        }
        self.order.push(q);
        evicted
    }
}

/// Simulates `circuit` on `arch` with `factory_area` macroblocks of
/// total ancilla-generation hardware. One-shot convenience over
/// [`SimContext`]; sweeps should build the context once instead.
///
/// # Panics
///
/// Panics if `factory_area <= 0` or the circuit is not lowered.
pub fn simulate(circuit: &Circuit, arch: Arch, factory_area: f64) -> SimOutcome {
    SimContext::new(circuit).simulate(arch, factory_area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_circuit::circuit::Circuit;
    use qods_circuit::schedule::Schedule;

    fn toy(n: usize, layers: usize) -> Circuit {
        let mut c = Circuit::named(n, "toy");
        for _ in 0..layers {
            for q in 0..n {
                c.h(q);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            c.t(0);
        }
        c
    }

    #[test]
    fn generous_fm_approaches_speed_of_data() {
        let c = toy(4, 6);
        let model = CharacterizationModel::ion_trap();
        let sod = Schedule::speed_of_data(&c, &model).makespan_us;
        let out = simulate(&c, Arch::FullyMultiplexed, 1e9);
        // FM adds only ballistic movement on 2q gates.
        assert!(out.makespan_us >= sod);
        assert!(out.makespan_us < sod * 1.5, "{} vs {sod}", out.makespan_us);
        assert_eq!(out.cache_misses, 0);
    }

    #[test]
    fn qla_is_never_faster_than_fm() {
        let c = toy(6, 4);
        for area in [1e3, 1e4, 1e5, 1e6] {
            let fm = simulate(&c, Arch::FullyMultiplexed, area);
            let qla = simulate(&c, Arch::Qla, area);
            assert!(
                qla.makespan_us >= fm.makespan_us * 0.999,
                "area {area}: QLA {} < FM {}",
                qla.makespan_us,
                fm.makespan_us
            );
        }
    }

    #[test]
    fn qla_wastes_idle_generation() {
        // With per-site buckets, a serial chain on one qubit starves
        // even though aggregate production would suffice: the other
        // sites' generators idle at full buffers.
        let mut c = Circuit::new(8);
        for _ in 0..50 {
            c.h(0);
        }
        let area = 8.0 * 200.0; // modest per-site generation
        let fm = simulate(&c, Arch::FullyMultiplexed, area);
        let qla = simulate(&c, Arch::Qla, area);
        assert!(
            qla.makespan_us > fm.makespan_us * 2.0,
            "QLA {} vs FM {}",
            qla.makespan_us,
            fm.makespan_us
        );
    }

    #[test]
    fn cqla_misses_cost_time() {
        let c = toy(8, 4);
        let big = simulate(&c, Arch::Cqla { cache_slots: 8 }, 1e6);
        let small = simulate(&c, Arch::Cqla { cache_slots: 4 }, 1e6);
        assert!(small.cache_misses > 0);
        assert!(big.cache_misses <= small.cache_misses);
        assert!(small.makespan_us > big.makespan_us);
    }

    #[test]
    fn cqla_plateaus_above_fm() {
        let c = toy(8, 6);
        let fm = simulate(&c, Arch::FullyMultiplexed, 1e7);
        let cqla = simulate(&c, Arch::Cqla { cache_slots: 4 }, 1e7);
        assert!(
            cqla.makespan_us > fm.makespan_us * 1.5,
            "CQLA {} vs FM {}",
            cqla.makespan_us,
            fm.makespan_us
        );
    }

    #[test]
    fn starved_architectures_are_supply_limited() {
        let c = toy(4, 8);
        let tiny = simulate(&c, Arch::FullyMultiplexed, 10.0);
        let big = simulate(&c, Arch::FullyMultiplexed, 1e7);
        assert!(tiny.makespan_us > 10.0 * big.makespan_us);
    }

    #[test]
    fn qalypso_matches_fm_within_tile() {
        // Whole circuit in one tile: Qalypso == FM up to the ballistic
        // distance (tile smaller than full region helps slightly).
        let c = toy(8, 4);
        let fm = simulate(&c, Arch::FullyMultiplexed, 1e7);
        let qal = simulate(&c, Arch::Qalypso { tile_qubits: 8 }, 1e7);
        assert!(qal.makespan_us <= fm.makespan_us * 1.01);
        assert_eq!(qal.teleports, 0);
    }

    #[test]
    fn cross_tile_gates_teleport() {
        let mut c = Circuit::new(8);
        c.cx(0, 7); // tiles 0 and 1 with tile_qubits = 4
        let out = simulate(&c, Arch::Qalypso { tile_qubits: 4 }, 1e6);
        assert_eq!(out.teleports, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_area_panics() {
        let c = toy(2, 1);
        let _ = simulate(&c, Arch::FullyMultiplexed, 0.0);
    }

    #[test]
    fn context_reuse_matches_one_shot_simulate() {
        let c = toy(6, 5);
        let ctx = SimContext::new(&c);
        for arch in [
            Arch::FullyMultiplexed,
            Arch::Qla,
            Arch::Cqla { cache_slots: 4 },
            Arch::Qalypso { tile_qubits: 4 },
        ] {
            for area in [500.0, 5e4, 5e6] {
                assert_eq!(ctx.simulate(arch, area), simulate(&c, arch, area));
            }
        }
    }

    #[test]
    fn outcome_is_identical_across_repeated_runs() {
        // The determinism contract: SimOutcome is a pure function of
        // (circuit, arch, area) — including equal-time event ties,
        // which resolve in program order.
        let c = toy(8, 6);
        let ctx = SimContext::new(&c);
        for arch in [
            Arch::FullyMultiplexed,
            Arch::Qla,
            Arch::Cqla { cache_slots: 4 },
            Arch::Qalypso { tile_qubits: 4 },
        ] {
            let first = ctx.simulate(arch, 3e4);
            for _ in 0..3 {
                assert_eq!(ctx.simulate(arch, 3e4), first);
            }
        }
    }

    #[test]
    fn waits_overlap_instead_of_adding() {
        // One CX on a warm CQLA cache: movement (2 intra-cache
        // teleports, plus any remote delivery) and the supply stall
        // both start at t=0 and overlap; the gate runs for its
        // 10 + 122 us the moment the slower wait ends. The old
        // accounting serialized supply behind movement.
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let out = simulate(&c, Arch::Cqla { cache_slots: 2 }, 200.0);
        assert!(out.movement_us > 0.0 && out.supply_stall_us > 0.0);
        let expected = out.movement_us.max(out.supply_stall_us) + 132.0;
        assert!(
            (out.makespan_us - expected).abs() < 1e-6,
            "makespan {} != max(movement {}, stall {}) + exec",
            out.makespan_us,
            out.movement_us,
            out.supply_stall_us
        );
    }
}
