//! The discrete-event core of the architectural simulator: a typed
//! event queue with a documented tie-break, serial-calendar resources,
//! and token-bucket supply streams.
//!
//! The simulator (see [`crate::simulator`]) is a policy layer over
//! these three primitives: gates become events, the CQLA hierarchy
//! port becomes a [`SerialResource`], and ancilla factories become
//! [`Pool`]s of independently-accruing [`TokenStream`]s.
//!
//! ## Determinism contract
//!
//! [`EventQueue`] pops events in ascending `(time, id)` order: earlier
//! events first, and among equal times the *smallest* id first (ids
//! are gate indices, so ties resolve in program order). Every resource
//! here is a deterministic function of its call sequence, so a
//! simulation built on them is a pure function of its inputs —
//! repeated runs, and parallel sweeps at any thread count, produce
//! bit-identical results.
//!
//! ## Token buckets, not reservoirs
//!
//! Encoded ancillae cannot be stockpiled indefinitely: an idle ancilla
//! must itself be error-corrected, and factory output ports hold only
//! a few blocks. A [`TokenStream`] therefore accrues at its production
//! rate up to a small *buffer* and wastes output beyond it. The zero
//! and pi/8 products of a [`Pool`] come from distinct factories, so
//! each stream accrues on its own clock: a draw that waits on the
//! slower product must not discard what the faster product goes on
//! producing in the meantime.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(time, id)` events with deterministic tie-breaking:
/// ascending time, then ascending id.
///
/// Times must be non-negative and finite (non-negative IEEE doubles
/// order identically to their bit patterns, which is what makes the
/// integer heap key exact — no epsilon comparisons anywhere).
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules event `id` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `t` is negative or NaN.
    pub fn push(&mut self, t: f64, id: usize) {
        debug_assert!(t >= 0.0 && !t.is_nan(), "event time must be non-negative");
        self.heap.push(Reverse((t.to_bits(), id)));
    }

    /// Removes and returns the earliest event; equal-time events come
    /// out in ascending id order.
    pub fn pop(&mut self) -> Option<(f64, usize)> {
        self.heap
            .pop()
            .map(|Reverse((bits, id))| (f64::from_bits(bits), id))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A resource that serves one request at a time, in call order: a
/// calendar of busy time. The CQLA memory<->cache hierarchy port is
/// one of these.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialResource {
    free_at: f64,
}

impl SerialResource {
    /// A resource idle from time zero.
    pub fn new() -> Self {
        SerialResource::default()
    }

    /// Reserves the resource for `duration` starting no earlier than
    /// `ready`; returns the completion time. The request queues behind
    /// everything previously acquired (FIFO in call order).
    pub fn acquire(&mut self, ready: f64, duration: f64) -> f64 {
        let start = ready.max(self.free_at);
        self.free_at = start + duration;
        self.free_at
    }

    /// When the resource next becomes idle.
    pub fn free_at(&self) -> f64 {
        self.free_at
    }
}

/// One product stream of an ancilla pool: tokens accrue continuously
/// at `rate_per_us` up to `buffer`, on the stream's own clock.
#[derive(Debug, Clone, Copy)]
pub struct TokenStream {
    rate_per_us: f64,
    buffer: f64,
    tokens: f64,
    last_t: f64,
}

impl TokenStream {
    /// A stream producing `rate_per_us` tokens/us into a bucket of
    /// `buffer` tokens, empty at time zero.
    pub fn new(rate_per_us: f64, buffer: f64) -> Self {
        TokenStream {
            rate_per_us,
            buffer,
            tokens: 0.0,
            last_t: 0.0,
        }
    }

    /// Tokens on hand after accruing up to time `t` (observation only
    /// in tests; draws use [`TokenStream::draw`]).
    pub fn level_at(&self, t: f64) -> f64 {
        let dt = (t - self.last_t).max(0.0);
        (self.tokens + self.rate_per_us * dt).min(self.buffer)
    }

    /// Draws `amount` tokens at (or after) time `t`; returns when the
    /// draw completes. Production accrued since the last draw is
    /// credited first (capped at the buffer — output beyond a full
    /// buffer is wasted); any shortfall is waited out at the
    /// production rate. The stream's clock advances to the completion
    /// time of *this* draw only — it never jumps ahead for waits on
    /// other streams.
    pub fn draw(&mut self, amount: f64, t: f64) -> f64 {
        if amount <= 0.0 {
            return t;
        }
        let t = t.max(self.last_t);
        let dt = t - self.last_t;
        self.tokens = (self.tokens + self.rate_per_us * dt).min(self.buffer);
        self.last_t = t;
        if amount <= self.tokens {
            self.tokens -= amount;
            t
        } else if self.rate_per_us > 0.0 {
            let wait = (amount - self.tokens) / self.rate_per_us;
            self.tokens = 0.0;
            self.last_t = t + wait;
            t + wait
        } else {
            f64::INFINITY
        }
    }
}

/// A token-bucket ancilla pool: one zero stream (QEC consumption) and
/// one pi/8 stream (non-transversal gates), accruing independently.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    zero: TokenStream,
    pi8: TokenStream,
}

impl Pool {
    /// A pool fed at the given per-ms bandwidths with the given
    /// buffers (in encoded blocks).
    pub fn new(zero_per_ms: f64, pi8_per_ms: f64, zero_buffer: f64, pi8_buffer: f64) -> Pool {
        Pool {
            zero: TokenStream::new(zero_per_ms / 1000.0, zero_buffer),
            pi8: TokenStream::new(pi8_per_ms / 1000.0, pi8_buffer),
        }
    }

    /// Draws `zeros` + `pi8` tokens at (or after) time `t`; returns
    /// when both draws complete. The two product streams come from
    /// distinct factories: each accrues and waits on its own clock, so
    /// tokens the faster stream produces while the draw waits on the
    /// slower one stay in its bucket for the next draw.
    pub fn consume(&mut self, zeros: f64, pi8: f64, t: f64) -> f64 {
        self.zero.draw(zeros, t).max(self.pi8.draw(pi8, t))
    }

    /// The zero stream (tests observe levels through this).
    pub fn zero_stream(&self) -> &TokenStream {
        &self.zero
    }

    /// The pi/8 stream.
    pub fn pi8_stream(&self) -> &TokenStream {
        &self.pi8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_id_order() {
        let mut q = EventQueue::new();
        q.push(2.0, 0);
        q.push(1.0, 7);
        q.push(1.0, 3);
        q.push(0.5, 9);
        q.push(1.0, 5);
        let order: Vec<(f64, usize)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![(0.5, 9), (1.0, 3), (1.0, 5), (1.0, 7), (2.0, 0)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn serial_resource_queues_in_call_order() {
        let mut port = SerialResource::new();
        assert_eq!(port.acquire(0.0, 5.0), 5.0);
        // Ready before the port frees: queues behind the first.
        assert_eq!(port.acquire(2.0, 3.0), 8.0);
        // Ready after the port frees: starts immediately.
        assert_eq!(port.acquire(10.0, 1.0), 11.0);
        assert_eq!(port.free_at(), 11.0);
    }

    #[test]
    fn stream_accrues_up_to_buffer_only() {
        let mut s = TokenStream::new(1.0, 3.0);
        // Long idle: bucket holds only the buffer.
        assert_eq!(s.level_at(100.0), 3.0);
        // Draw beyond the buffer after the idle: waits exactly the
        // shortfall at the rate — no tokens were created beyond it.
        assert_eq!(s.draw(5.0, 100.0), 102.0);
    }

    #[test]
    fn stream_waits_at_production_rate() {
        let mut s = TokenStream::new(2.0, 10.0);
        assert_eq!(s.draw(4.0, 0.0), 2.0); // 4 tokens at 2/us
        assert_eq!(s.draw(4.0, 2.0), 4.0); // bucket empty again
    }

    #[test]
    fn zero_amount_draws_are_free_even_without_production() {
        let mut s = TokenStream::new(0.0, 0.0);
        assert_eq!(s.draw(0.0, 7.0), 7.0);
        assert_eq!(s.draw(1.0, 7.0), f64::INFINITY);
    }

    #[test]
    fn streams_accrue_independently_while_one_waits() {
        // Zero stream is fast, pi/8 stream is slow. A draw that waits
        // on pi/8 must not freeze the zero stream's clock at the
        // combined completion time.
        let mut p = Pool::new(1000.0, 10.0, 100.0, 10.0);
        // Buckets start empty. Draw 1 zero + 1 pi8 at t=0: the zero
        // side completes at 1us, the pi/8 side at 100us.
        let done = p.consume(1.0, 1.0, 0.0);
        assert_eq!(done, 100.0);
        // During the 99us spent waiting on pi/8, the zero stream kept
        // producing (its own draw finished at t=1): by t=100 it holds
        // 99 tokens, so a 99-zero draw at t=100 completes instantly.
        // (The old single-clock pool froze the zero stream at t=100
        // and would have made this draw wait the full 99us again.)
        let z = p.consume(99.0, 0.0, 100.0);
        assert_eq!(z, 100.0);
    }

    #[test]
    fn split_draw_is_never_slower_than_combined() {
        // Regression for the old single-clock pool: drawing the same
        // demand as two back-to-back draws must complete no later than
        // one combined draw does (independent accrual can only help).
        let cases = [
            (50.0, 4.0, 8.0, 3.0, 2.0),
            (200.0, 10.0, 32.0, 8.0, 1.0),
            (3.1, 0.9, 2.0, 1.0, 0.0),
        ];
        for (zr, pr, zb, pb, t0) in cases {
            let mut combined = Pool::new(zr, pr, zb, pb);
            let mut split = Pool::new(zr, pr, zb, pb);
            let whole = combined.consume(6.0, 2.0, t0);
            let first = split.consume(3.0, 1.0, t0);
            let second = split.consume(3.0, 1.0, first);
            assert!(
                second <= whole + 1e-9,
                "split {second} > combined {whole} for rates ({zr},{pr})"
            );
        }
    }
}
