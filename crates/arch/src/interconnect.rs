//! Movement cost models: ballistic channels and the teleport-based
//! interconnect (the paper's [16]).
//!
//! Teleportation's EPR-pair generation and distribution run off the
//! critical path (they are ancilla-like and pipelined); the on-path
//! cost is the Bell measurement side: a transversal CX, a measurement,
//! and the conditional Pauli correction, plus the classical-latency
//! window which we fold into the channel traversal term.

use qods_phys::latency::LatencyTable;

/// Interconnect cost model.
#[derive(Debug, Clone, Copy)]
pub struct Interconnect {
    table: LatencyTable,
}

impl Interconnect {
    /// The ion-trap model.
    pub fn ion_trap() -> Self {
        Interconnect {
            table: LatencyTable::ion_trap(),
        }
    }

    /// With custom latencies.
    pub fn with_latencies(table: LatencyTable) -> Self {
        Interconnect { table }
    }

    /// One teleport of an encoded qubit between regions: transversal
    /// CX + measure + conditional correction, plus ~10 macroblocks of
    /// channel traversal with two corners.
    pub fn teleport_us(&self) -> f64 {
        let t = &self.table;
        (t.t_2q + t.t_meas + t.t_1q) + 10.0 * t.t_move + 2.0 * t.t_turn
    }

    /// Ballistic movement across `blocks` macroblocks with `turns`
    /// corners (encoded qubits move as a column; the channel pitch is
    /// one macroblock per physical qubit, so crossing an encoded
    /// neighbor is ~1 block).
    pub fn ballistic_us(&self, blocks: f64, turns: f64) -> f64 {
        blocks * self.table.t_move + turns * self.table.t_turn
    }

    /// Average ballistic cost between two random qubits in a dense
    /// data region of `n` encoded qubits (mean separation n/3 columns,
    /// two corners to change rows).
    pub fn avg_ballistic_us(&self, n: usize) -> f64 {
        self.ballistic_us(n as f64 / 3.0, 2.0)
    }
}

impl Default for Interconnect {
    fn default() -> Self {
        Interconnect::ion_trap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn teleport_cost_under_ion_trap() {
        let i = Interconnect::ion_trap();
        // 61 us gadget + 30 us channel.
        assert_eq!(i.teleport_us(), 91.0);
    }

    #[test]
    fn ballistic_is_cheap_for_small_regions() {
        let i = Interconnect::ion_trap();
        assert!(i.avg_ballistic_us(16) < i.teleport_us());
        // ...but large flat regions eventually lose to teleporting,
        // which motivates Qalypso's tiling.
        assert!(i.avg_ballistic_us(400) > i.teleport_us());
    }
}
