//! Qalypso tile-size optimization — the open problem of §5.3.
//!
//! "The choice of data region size is still an open problem and
//! depends on the level of parallelism in the target application."
//! This module sweeps tile sizes for a given circuit and area budget
//! and reports the latency-minimizing choice, quantifying the §5.3
//! trade-off: small tiles keep ballistic movement cheap but force
//! inter-tile teleports and fragment the factory pools; large tiles do
//! the opposite.

use crate::machine::Arch;
use crate::simulator::SimContext;
use qods_circuit::circuit::Circuit;

/// One tile-size evaluation.
#[derive(Debug, Clone, Copy)]
pub struct TilePoint {
    /// Encoded data qubits per tile.
    pub tile_qubits: usize,
    /// Execution time (us).
    pub exec_us: f64,
    /// Inter-tile teleports incurred.
    pub teleports: u64,
}

/// Sweeps tile sizes (powers of two from 2 up to the full machine).
pub fn tile_sweep(circuit: &Circuit, factory_area: f64) -> Vec<TilePoint> {
    let n = circuit.n_qubits();
    let mut sizes: Vec<usize> = Vec::new();
    let mut t = 2usize;
    while t < n {
        sizes.push(t);
        t *= 2;
    }
    sizes.push(n); // single-tile machine
    let ctx = SimContext::new(circuit); // characterize once for every size
    sizes
        .into_iter()
        .map(|tile_qubits| {
            let out = ctx.simulate(Arch::Qalypso { tile_qubits }, factory_area);
            TilePoint {
                tile_qubits,
                exec_us: out.makespan_us,
                teleports: out.teleports,
            }
        })
        .collect()
}

/// The latency-minimizing tile size for a circuit at a given area.
pub fn best_tile(circuit: &Circuit, factory_area: f64) -> TilePoint {
    tile_sweep(circuit, factory_area)
        .into_iter()
        .min_by(|a, b| a.exec_us.partial_cmp(&b.exec_us).expect("finite"))
        .expect("at least one tile size")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Circuit {
        let mut c = Circuit::named(n, "toy");
        for r in 0..4 {
            for q in 0..n {
                c.h(q);
            }
            for q in 0..n - 1 {
                c.cx(q, q + 1);
            }
            c.t(r % n);
        }
        c
    }

    #[test]
    fn sweep_covers_power_of_two_sizes() {
        let c = toy(12);
        let pts = tile_sweep(&c, 1e5);
        let sizes: Vec<usize> = pts.iter().map(|p| p.tile_qubits).collect();
        assert_eq!(sizes, vec![2, 4, 8, 12]);
    }

    #[test]
    fn teleports_decrease_with_tile_size() {
        let c = toy(16);
        let pts = tile_sweep(&c, 1e5);
        for w in pts.windows(2) {
            assert!(w[1].teleports <= w[0].teleports);
        }
        assert_eq!(pts.last().expect("points").teleports, 0);
    }

    #[test]
    fn best_tile_is_no_worse_than_extremes() {
        let c = toy(16);
        let pts = tile_sweep(&c, 1e5);
        let best = best_tile(&c, 1e5);
        for p in &pts {
            assert!(best.exec_us <= p.exec_us + 1e-9);
        }
    }
}
