//! # qods-arch — quantum microarchitectures and their comparison (§5)
//!
//! Event-driven dataflow simulation of a lowered benchmark circuit on
//! four microarchitectures:
//!
//! * **QLA** (Metodi et al., the paper's [22]) — every encoded data
//!   qubit owns a dedicated ancilla generator; data always returns to
//!   its home cell for QEC; two-qubit gates teleport the operands
//!   together and back. Sweeping total generator area generalizes QLA
//!   to the paper's GQLA (replicated generators).
//! * **CQLA** (Thaker et al., [15]) — a compute cache of data qubits
//!   backed by memory; gates only execute in the cache; misses pay
//!   teleport-in and writeback penalties (SimpleScalar-style cache
//!   simulation).
//! * **Fully-Multiplexed** (Fig 14b) — all factories pooled; encoded
//!   ancillae routed to whichever data qubit needs them.
//! * **Qalypso** (Fig 16) — the paper's proposal: dense data-only
//!   regions tiled with shared surrounding factories; ballistic
//!   movement within a tile, teleportation between tiles.
//!
//! The headline experiment (Fig 15) sweeps total ancilla-factory area
//! against execution time for each architecture, reproducing the
//! paper's findings: CQLA plateaus well above Fully-Multiplexed, QLA
//! needs orders of magnitude more area to match it, and the proposed
//! organization yields >5x speedup at matched area.
//!
//! # Example
//!
//! ```
//! use qods_arch::machine::Arch;
//! use qods_arch::simulator::simulate;
//! use qods_circuit::circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0);
//! c.cx(0, 1);
//! let fm = simulate(&c, Arch::FullyMultiplexed, 10_000.0);
//! let qla = simulate(&c, Arch::Qla, 10_000.0);
//! assert!(fm.makespan_us <= qla.makespan_us);
//! ```

pub mod engine;
pub mod interconnect;
pub mod machine;
pub mod simulator;
pub mod sweep;
pub mod table9;
pub mod tiling;

pub use machine::Arch;
pub use simulator::{simulate, SimContext, SimOutcome};
pub use sweep::{
    area_sweep, host_threads, speedup_summary, speedup_summary_from_curves, ArchCurve, SweepPoint,
};
pub use table9::{table9_row, Table9Row};
pub use tiling::{best_tile, tile_sweep, TilePoint};
