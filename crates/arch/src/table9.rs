//! Table 9: the chip-area breakdown when running at the speed of data.

use qods_circuit::characterize::CircuitReport;
use qods_factory::supply::{FactoryFarm, ZeroFactoryKind};
use qods_layout::region::data_region_area;

/// One Table 9 row.
#[derive(Debug, Clone)]
pub struct Table9Row {
    /// Benchmark name.
    pub name: String,
    /// Encoded-zero bandwidth for QEC (per ms) — Table 9 column 2.
    pub zero_bandwidth: f64,
    /// Data region area (macroblocks).
    pub data_area: f64,
    /// QEC zero-factory area.
    pub qec_factory_area: f64,
    /// pi/8 chain area (encoders + feeding zero factories).
    pub pi8_factory_area: f64,
}

impl Table9Row {
    /// Total chip area.
    pub fn total(&self) -> f64 {
        self.data_area + self.qec_factory_area + self.pi8_factory_area
    }

    /// Data share of the chip.
    pub fn data_share(&self) -> f64 {
        self.data_area / self.total()
    }

    /// QEC-factory share.
    pub fn qec_share(&self) -> f64 {
        self.qec_factory_area / self.total()
    }

    /// pi/8-chain share.
    pub fn pi8_share(&self) -> f64 {
        self.pi8_factory_area / self.total()
    }

    /// Fraction of the chip devoted to ancilla generation of any kind.
    pub fn generation_share(&self) -> f64 {
        1.0 - self.data_share()
    }
}

/// Builds a Table 9 row from a benchmark characterization.
pub fn table9_row(report: &CircuitReport) -> Table9Row {
    let farm = FactoryFarm::size_for(
        report.bandwidth.zero_per_ms,
        report.bandwidth.pi8_per_ms,
        ZeroFactoryKind::Pipelined,
    );
    Table9Row {
        name: report.name.clone(),
        zero_bandwidth: report.bandwidth.zero_per_ms,
        data_area: data_region_area(report.n_qubits) as f64,
        qec_factory_area: farm.qec_factory_area,
        pi8_factory_area: farm.pi8_factory_area,
    }
}

/// Builds a Table 9 row directly from the paper's published
/// bandwidths (validation path).
pub fn table9_row_from_bandwidths(
    name: &str,
    n_qubits: usize,
    zero_per_ms: f64,
    pi8_per_ms: f64,
) -> Table9Row {
    let farm = FactoryFarm::size_for(zero_per_ms, pi8_per_ms, ZeroFactoryKind::Pipelined);
    Table9Row {
        name: name.to_string(),
        zero_bandwidth: zero_per_ms,
        data_area: data_region_area(n_qubits) as f64,
        qec_factory_area: farm.qec_factory_area,
        pi8_factory_area: farm.pi8_factory_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_reproduce_within_one_percent() {
        // (name, qubits, zero bw, pi8 bw, data, qec, pi8, shares)
        let rows = [
            (
                "QRCA",
                97,
                34.8,
                7.0,
                679.0,
                986.9,
                354.7,
                (0.336, 0.488, 0.176),
            ),
            (
                "QCLA",
                123,
                306.1,
                62.7,
                861.0,
                8682.2,
                3154.4,
                (0.068, 0.684, 0.248),
            ),
            (
                "QFT",
                32,
                36.8,
                8.6,
                224.0,
                1043.5,
                433.7,
                (0.132, 0.613, 0.255),
            ),
        ];
        for (name, nq, zbw, pbw, data, qec, pi8, shares) in rows {
            let row = table9_row_from_bandwidths(name, nq, zbw, pbw);
            assert_eq!(row.data_area, data, "{name} data area");
            assert!(
                (row.qec_factory_area - qec).abs() / qec < 0.01,
                "{name} qec {}",
                row.qec_factory_area
            );
            assert!(
                (row.pi8_factory_area - pi8).abs() / pi8 < 0.015,
                "{name} pi8 {}",
                row.pi8_factory_area
            );
            assert!(
                (row.data_share() - shares.0).abs() < 0.005,
                "{name} data share"
            );
            assert!(
                (row.qec_share() - shares.1).abs() < 0.005,
                "{name} qec share"
            );
            assert!(
                (row.pi8_share() - shares.2).abs() < 0.005,
                "{name} pi8 share"
            );
        }
    }

    #[test]
    fn even_the_serial_adder_is_generation_dominated() {
        // §5.1: "even the most serial of the benchmarks ... requires
        // two-thirds of the chip dedicated to encoded ancilla
        // generation"; the QCLA needs more than 90%.
        let qrca = table9_row_from_bandwidths("QRCA", 97, 34.8, 7.0);
        assert!(qrca.generation_share() > 0.60);
        let qcla = table9_row_from_bandwidths("QCLA", 123, 306.1, 62.7);
        assert!(qcla.generation_share() > 0.90);
    }
}
