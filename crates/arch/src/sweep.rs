//! The Fig 15 experiment: execution time vs. total ancilla-factory
//! area for each microarchitecture, plus the paper's headline speedup
//! summary.
//!
//! A sweep characterizes the circuit once ([`SimContext`]) and then
//! runs every `(arch, area)` point through the workspace's shared
//! worker pool ([`qods_pool`] — the same pool the Monte-Carlo runner
//! and the service scheduler use). Each point is a pure function of
//! `(context, arch, area)`, so the sweep is bit-identical at any
//! thread count, including fully sequential.

use crate::machine::Arch;
use crate::simulator::SimContext;
use qods_circuit::circuit::Circuit;
/// Re-exported so existing `qods_arch::sweep::host_threads` callers
/// keep working now that the policy lives in the shared pool crate.
pub use qods_pool::host_threads;

/// One point of an architecture's area/latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Total ancilla-factory area (macroblocks).
    pub area: f64,
    /// Execution time (us).
    pub exec_us: f64,
}

/// One architecture's curve.
#[derive(Debug, Clone)]
pub struct ArchCurve {
    /// Architecture display name.
    pub arch: &'static str,
    /// Sweep points in increasing area order.
    pub points: Vec<SweepPoint>,
}

impl ArchCurve {
    /// The plateau (best achievable) execution time.
    pub fn plateau_us(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.exec_us)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest swept area whose execution time is within
    /// `slack` (e.g. 1.1 = 10%) of the plateau.
    pub fn knee_area(&self, slack: f64) -> f64 {
        let plateau = self.plateau_us();
        self.points
            .iter()
            .find(|p| p.exec_us <= plateau * slack)
            .map_or(f64::INFINITY, |p| p.area)
    }
}

/// Log-spaced areas from `lo` to `hi` (inclusive).
pub fn log_areas(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "bad area range");
    let step = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * step.powi(i as i32)).collect()
}

/// Worker count for a sweep of `points` independent simulations: one
/// per core (or the process-wide `qods_pool` pin), never more than
/// the points available.
fn default_threads(points: usize) -> usize {
    qods_pool::pool_threads(points)
}

/// Runs the Fig 15 sweep for the given architectures, parallel across
/// `(arch, area)` points with one worker per core.
pub fn area_sweep(circuit: &Circuit, archs: &[Arch], areas: &[f64]) -> Vec<ArchCurve> {
    let ctx = SimContext::new(circuit);
    area_sweep_in(
        &ctx,
        archs,
        areas,
        default_threads(archs.len() * areas.len()),
    )
}

/// [`area_sweep`] over an existing context with an explicit worker
/// count (1 = sequential). Results are bit-identical for any
/// `threads`: every point is an independent pure function, workers
/// write disjoint result slots, and the assembly order is fixed.
pub fn area_sweep_in(
    ctx: &SimContext<'_>,
    archs: &[Arch],
    areas: &[f64],
    threads: usize,
) -> Vec<ArchCurve> {
    let n_points = archs.len() * areas.len();
    let flat = qods_pool::run_indexed(n_points, threads, |i| {
        // Point boundaries are the sweep's cancellation points: a
        // deadline hit unwinds between points, never inside one, so a
        // cancelled sweep exposes no partial curve.
        qods_pool::check_deadline();
        let (ai, pi) = (i / areas.len(), i % areas.len());
        SweepPoint {
            area: areas[pi],
            exec_us: ctx.simulate(archs[ai], areas[pi]).makespan_us,
        }
    });

    archs
        .iter()
        .enumerate()
        .map(|(ai, &arch)| ArchCurve {
            arch: arch.name(),
            points: flat[ai * areas.len()..(ai + 1) * areas.len()].to_vec(),
        })
        .collect()
}

/// The quantitative claims of §5.2 / §6 for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupSummary {
    /// Maximum equal-area speedup of Fully-Multiplexed over the best
    /// of QLA and CQLA (the ">5x over previous proposals" headline).
    pub max_speedup: f64,
    /// The area at which that maximum occurs.
    pub area_at_max: f64,
    /// Fully-Multiplexed plateau execution time.
    pub fm_plateau_us: f64,
    /// QLA plateau execution time.
    pub qla_plateau_us: f64,
    /// CQLA plateau execution time.
    pub cqla_plateau_us: f64,
    /// Ratio of QLA's knee area to Fully-Multiplexed's (the paper
    /// reports about two orders of magnitude).
    pub qla_area_penalty: f64,
}

/// Computes the headline summary by sweeping the three §5.2
/// architectures on `circuit`.
pub fn speedup_summary(circuit: &Circuit, areas: &[f64]) -> SpeedupSummary {
    let ctx = SimContext::new(circuit);
    let archs = [
        Arch::FullyMultiplexed,
        Arch::Qla,
        Arch::default_cqla(circuit.n_qubits()),
    ];
    let curves = area_sweep_in(
        &ctx,
        &archs,
        areas,
        default_threads(archs.len() * areas.len()),
    );
    speedup_summary_from_curves(&curves)
}

/// Derives the headline summary from curves already swept — callers
/// that ran [`area_sweep`] (on at least FM, QLA, and CQLA) reuse those
/// simulations instead of re-sweeping.
///
/// # Panics
///
/// Panics if the FM, QLA, or CQLA curve is missing or the curves have
/// mismatched point counts.
pub fn speedup_summary_from_curves(curves: &[ArchCurve]) -> SpeedupSummary {
    let find = |name: &str| -> &ArchCurve {
        curves
            .iter()
            .find(|c| c.arch == name)
            .unwrap_or_else(|| panic!("summary needs a {name} curve"))
    };
    let fm = find("Fully-Multiplexed");
    let qla = find("QLA");
    let cqla = find("CQLA");
    assert!(
        fm.points.len() == qla.points.len() && fm.points.len() == cqla.points.len(),
        "curves must share the area grid"
    );

    let mut max_speedup = 0.0f64;
    let mut area_at_max = 0.0;
    for ((f, q), c) in fm.points.iter().zip(&qla.points).zip(&cqla.points) {
        let best_baseline = q.exec_us.min(c.exec_us);
        let s = best_baseline / f.exec_us;
        if s > max_speedup {
            max_speedup = s;
            area_at_max = f.area;
        }
    }
    SpeedupSummary {
        max_speedup,
        area_at_max,
        fm_plateau_us: fm.plateau_us(),
        qla_plateau_us: qla.plateau_us(),
        cqla_plateau_us: cqla.plateau_us(),
        qla_area_penalty: qla.knee_area(1.15) / fm.knee_area(1.15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut c = Circuit::named(8, "toy");
        for _ in 0..6 {
            for q in 0..8 {
                c.h(q);
            }
            for q in 0..7 {
                c.cx(q, q + 1);
            }
            c.t(3);
        }
        c
    }

    fn all_archs() -> [Arch; 4] {
        [
            Arch::FullyMultiplexed,
            Arch::Qla,
            Arch::default_cqla(8),
            Arch::Qalypso { tile_qubits: 4 },
        ]
    }

    #[test]
    fn curves_are_monotone_decreasing() {
        // All four architectures, Qalypso included: more factory area
        // never slows execution.
        let c = toy();
        let areas = log_areas(100.0, 1e6, 9);
        for curve in area_sweep(&c, &all_archs(), &areas) {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].exec_us <= w[0].exec_us * 1.0001,
                    "{}: not monotone at area {}",
                    curve.arch,
                    w[1].area
                );
            }
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical_at_any_thread_count() {
        let c = toy();
        let ctx = SimContext::new(&c);
        let areas = log_areas(100.0, 1e6, 7);
        let archs = all_archs();
        let sequential = area_sweep_in(&ctx, &archs, &areas, 1);
        for threads in [2, 3, 5, 16] {
            let parallel = area_sweep_in(&ctx, &archs, &areas, threads);
            for (a, b) in sequential.iter().zip(&parallel) {
                assert_eq!(a.arch, b.arch);
                assert_eq!(a.points, b.points, "threads = {threads}");
            }
        }
    }

    #[test]
    fn summary_from_curves_matches_direct_summary() {
        let c = toy();
        let areas = log_areas(100.0, 1e6, 7);
        let curves = area_sweep(&c, &all_archs(), &areas);
        let from_curves = speedup_summary_from_curves(&curves);
        let direct = speedup_summary(&c, &areas);
        assert_eq!(from_curves.max_speedup, direct.max_speedup);
        assert_eq!(from_curves.area_at_max, direct.area_at_max);
        assert_eq!(from_curves.fm_plateau_us, direct.fm_plateau_us);
        assert_eq!(from_curves.qla_plateau_us, direct.qla_plateau_us);
        assert_eq!(from_curves.cqla_plateau_us, direct.cqla_plateau_us);
        assert_eq!(from_curves.qla_area_penalty, direct.qla_area_penalty);
    }

    #[test]
    fn fm_dominates_and_summary_is_consistent() {
        let c = toy();
        let areas = log_areas(100.0, 1e6, 9);
        let s = speedup_summary(&c, &areas);
        assert!(s.max_speedup >= 1.0);
        assert!(s.fm_plateau_us <= s.qla_plateau_us * 1.001);
        assert!(s.fm_plateau_us <= s.cqla_plateau_us * 1.001);
        assert!(s.qla_area_penalty >= 1.0);
    }

    #[test]
    fn log_areas_are_geometric() {
        let a = log_areas(10.0, 1000.0, 3);
        assert_eq!(a.len(), 3);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 100.0).abs() < 1e-6);
        assert!((a[2] - 1000.0).abs() < 1e-6);
    }
}
