//! The Fig 15 experiment: execution time vs. total ancilla-factory
//! area for each microarchitecture, plus the paper's headline speedup
//! summary.

use crate::machine::Arch;
use crate::simulator::simulate;
use qods_circuit::circuit::Circuit;

/// One point of an architecture's area/latency curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Total ancilla-factory area (macroblocks).
    pub area: f64,
    /// Execution time (us).
    pub exec_us: f64,
}

/// One architecture's curve.
#[derive(Debug, Clone)]
pub struct ArchCurve {
    /// Architecture display name.
    pub arch: &'static str,
    /// Sweep points in increasing area order.
    pub points: Vec<SweepPoint>,
}

impl ArchCurve {
    /// The plateau (best achievable) execution time.
    pub fn plateau_us(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.exec_us)
            .fold(f64::INFINITY, f64::min)
    }

    /// The smallest swept area whose execution time is within
    /// `slack` (e.g. 1.1 = 10%) of the plateau.
    pub fn knee_area(&self, slack: f64) -> f64 {
        let plateau = self.plateau_us();
        self.points
            .iter()
            .find(|p| p.exec_us <= plateau * slack)
            .map_or(f64::INFINITY, |p| p.area)
    }
}

/// Log-spaced areas from `lo` to `hi` (inclusive).
pub fn log_areas(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2, "bad area range");
    let step = (hi / lo).powf(1.0 / (n - 1) as f64);
    (0..n).map(|i| lo * step.powi(i as i32)).collect()
}

/// Runs the Fig 15 sweep for the given architectures.
pub fn area_sweep(circuit: &Circuit, archs: &[Arch], areas: &[f64]) -> Vec<ArchCurve> {
    archs
        .iter()
        .map(|&arch| ArchCurve {
            arch: arch.name(),
            points: areas
                .iter()
                .map(|&area| SweepPoint {
                    area,
                    exec_us: simulate(circuit, arch, area).makespan_us,
                })
                .collect(),
        })
        .collect()
}

/// The quantitative claims of §5.2 / §6 for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupSummary {
    /// Maximum equal-area speedup of Fully-Multiplexed over the best
    /// of QLA and CQLA (the ">5x over previous proposals" headline).
    pub max_speedup: f64,
    /// The area at which that maximum occurs.
    pub area_at_max: f64,
    /// Fully-Multiplexed plateau execution time.
    pub fm_plateau_us: f64,
    /// QLA plateau execution time.
    pub qla_plateau_us: f64,
    /// CQLA plateau execution time.
    pub cqla_plateau_us: f64,
    /// Ratio of QLA's knee area to Fully-Multiplexed's (the paper
    /// reports about two orders of magnitude).
    pub qla_area_penalty: f64,
}

/// Computes the headline summary by sweeping the three §5.2
/// architectures on `circuit`.
pub fn speedup_summary(circuit: &Circuit, areas: &[f64]) -> SpeedupSummary {
    let archs = [
        Arch::FullyMultiplexed,
        Arch::Qla,
        Arch::default_cqla(circuit.n_qubits()),
    ];
    let curves = area_sweep(circuit, &archs, areas);
    let fm = &curves[0];
    let qla = &curves[1];
    let cqla = &curves[2];

    let mut max_speedup = 0.0f64;
    let mut area_at_max = 0.0;
    for ((f, q), c) in fm.points.iter().zip(&qla.points).zip(&cqla.points) {
        let best_baseline = q.exec_us.min(c.exec_us);
        let s = best_baseline / f.exec_us;
        if s > max_speedup {
            max_speedup = s;
            area_at_max = f.area;
        }
    }
    SpeedupSummary {
        max_speedup,
        area_at_max,
        fm_plateau_us: fm.plateau_us(),
        qla_plateau_us: qla.plateau_us(),
        cqla_plateau_us: cqla.plateau_us(),
        qla_area_penalty: qla.knee_area(1.15) / fm.knee_area(1.15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        let mut c = Circuit::named(8, "toy");
        for _ in 0..6 {
            for q in 0..8 {
                c.h(q);
            }
            for q in 0..7 {
                c.cx(q, q + 1);
            }
            c.t(3);
        }
        c
    }

    #[test]
    fn curves_are_monotone_decreasing() {
        let c = toy();
        let areas = log_areas(100.0, 1e6, 9);
        for curve in area_sweep(
            &c,
            &[Arch::FullyMultiplexed, Arch::Qla, Arch::default_cqla(8)],
            &areas,
        ) {
            for w in curve.points.windows(2) {
                assert!(
                    w[1].exec_us <= w[0].exec_us * 1.0001,
                    "{}: not monotone at area {}",
                    curve.arch,
                    w[1].area
                );
            }
        }
    }

    #[test]
    fn fm_dominates_and_summary_is_consistent() {
        let c = toy();
        let areas = log_areas(100.0, 1e6, 9);
        let s = speedup_summary(&c, &areas);
        assert!(s.max_speedup >= 1.0);
        assert!(s.fm_plateau_us <= s.qla_plateau_us * 1.001);
        assert!(s.fm_plateau_us <= s.cqla_plateau_us * 1.001);
        assert!(s.qla_area_penalty >= 1.0);
    }

    #[test]
    fn log_areas_are_geometric() {
        let a = log_areas(10.0, 1000.0, 3);
        assert_eq!(a.len(), 3);
        assert!((a[0] - 10.0).abs() < 1e-9);
        assert!((a[1] - 100.0).abs() < 1e-6);
        assert!((a[2] - 1000.0).abs() < 1e-6);
    }
}
