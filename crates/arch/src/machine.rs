//! Microarchitecture configurations.

/// Which microarchitecture executes the circuit (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// Dedicated per-qubit ancilla generation; home-base QEC; teleport
    /// for every two-qubit gate. Sweeping area = GQLA replication.
    Qla,
    /// Compute cache with `cache_slots` resident qubits; misses pay
    /// teleportation; generation pooled across the cache.
    Cqla {
        /// Number of data qubits resident in the compute cache.
        cache_slots: usize,
    },
    /// All factories pooled; ancillae delivered anywhere (Fig 14b).
    FullyMultiplexed,
    /// Tiled Qalypso (Fig 16): dense data-only regions of
    /// `tile_qubits` with surrounding shared factories; ballistic
    /// movement within a tile, teleportation between tiles.
    Qalypso {
        /// Encoded data qubits per tile.
        tile_qubits: usize,
    },
}

impl Arch {
    /// Display name used in reports and figure series.
    pub fn name(&self) -> &'static str {
        match self {
            Arch::Qla => "QLA",
            Arch::Cqla { .. } => "CQLA",
            Arch::FullyMultiplexed => "Fully-Multiplexed",
            Arch::Qalypso { .. } => "Qalypso",
        }
    }

    /// The default CQLA configuration for an `n`-qubit benchmark: a
    /// cache of an eighth of the data (at least four slots) — the
    /// memory-dominated regime the CQLA design targets.
    pub fn default_cqla(n_qubits: usize) -> Arch {
        Arch::Cqla {
            cache_slots: (n_qubits / 8).max(4),
        }
    }

    /// The default Qalypso tiling: 16-qubit tiles (small enough that
    /// ballistic movement stays cheap; see
    /// `Interconnect::avg_ballistic_us`).
    pub fn default_qalypso() -> Arch {
        Arch::Qalypso { tile_qubits: 16 }
    }

    /// The Fig 15 comparison panel for an `n`-qubit benchmark: all
    /// four architectures at their default configurations, in the
    /// paper's presentation order.
    pub fn fig15_panel(n_qubits: usize) -> [Arch; 4] {
        [
            Arch::FullyMultiplexed,
            Arch::Qla,
            Arch::default_cqla(n_qubits),
            Arch::default_qalypso(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names() {
        assert_eq!(Arch::Qla.name(), "QLA");
        assert_eq!(Arch::default_cqla(32).name(), "CQLA");
        assert_eq!(Arch::FullyMultiplexed.name(), "Fully-Multiplexed");
        assert_eq!(Arch::default_qalypso().name(), "Qalypso");
    }

    #[test]
    fn default_cqla_scales_with_width() {
        assert_eq!(Arch::default_cqla(8), Arch::Cqla { cache_slots: 4 });
        assert_eq!(Arch::default_cqla(128), Arch::Cqla { cache_slots: 16 });
    }

    #[test]
    fn fig15_panel_covers_all_four_architectures() {
        let panel = Arch::fig15_panel(64);
        assert_eq!(panel[0], Arch::FullyMultiplexed);
        assert_eq!(panel[1], Arch::Qla);
        assert_eq!(panel[2], Arch::Cqla { cache_slots: 8 });
        assert_eq!(panel[3], Arch::Qalypso { tile_qubits: 16 });
        let names: Vec<_> = panel.iter().map(Arch::name).collect();
        assert_eq!(names, ["Fully-Multiplexed", "QLA", "CQLA", "Qalypso"]);
    }
}
