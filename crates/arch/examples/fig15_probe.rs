//! Fig 15 shape probe on all three kernels.
use qods_arch::machine::Arch;
use qods_arch::simulator::SimContext;
use qods_arch::sweep::{area_sweep_in, host_threads, log_areas, speedup_summary_from_curves};
use qods_kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
use std::time::Instant;

fn main() {
    let synth = SynthAdapter::with_budget(12, 1e-2);
    let circuits = vec![qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)];
    let threads = host_threads();
    for c in &circuits {
        let areas = log_areas(200.0, 3e6, 13);
        let t0 = Instant::now();
        let ctx = SimContext::new(c);
        let curves = area_sweep_in(&ctx, &Arch::fig15_panel(c.n_qubits()), &areas, threads);
        println!("== {} ==", c.name);
        for curve in &curves {
            print!("{:<18}", curve.arch);
            for p in &curve.points {
                print!(" {:.2e}", p.exec_us);
            }
            println!();
        }
        let s = speedup_summary_from_curves(&curves);
        println!(
            "max_speedup={:.1} at {:.1e}; plateaus fm={:.2e} qla={:.2e} cqla={:.2e}; qla area penalty={:.0}x; {:?}",
            s.max_speedup, s.area_at_max, s.fm_plateau_us, s.qla_plateau_us, s.cqla_plateau_us, s.qla_area_penalty, t0.elapsed()
        );
    }
}
