//! Property suite for the token-bucket supply streams and the event
//! engine's determinism contract.
//!
//! The load-bearing property is the *fluid oracle*: a token stream
//! whose bucket never saturates is exactly a fluid queue — draw `k`
//! (cumulative demand `S_k`, at non-decreasing times `t_k`) completes
//! at `max(t_k, S_k / rate)`. The old pool violated this whenever the
//! zero and pi/8 streams were drawn together: the shared clock jumped
//! to the slower stream's completion and threw away what the faster
//! stream produced in between.

use proptest::prelude::*;
use qods_arch::engine::{Pool, TokenStream};
use qods_arch::machine::Arch;
use qods_arch::simulator::SimContext;
use qods_circuit::circuit::Circuit;

/// Decodes sampled `(amount, gap)` pairs into a draw sequence with
/// non-decreasing times.
fn draws(seq: &[(u16, u16)]) -> Vec<(f64, f64)> {
    let mut t = 0.0;
    seq.iter()
        .map(|&(a, gap)| {
            t += gap as f64 / 16.0;
            (a as f64 / 8.0, t)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// With an unsaturable buffer, a stream is exactly the fluid
    /// queue: no production is ever lost, none is ever created.
    #[test]
    fn unbounded_stream_matches_fluid_oracle(
        seq in proptest::collection::vec((0u16..200, 0u16..400), 1..40),
        rate_x16 in 1u32..64,
    ) {
        let rate = rate_x16 as f64 / 16.0;
        let mut s = TokenStream::new(rate, f64::INFINITY);
        let mut cumulative = 0.0f64;
        for (amount, t) in draws(&seq) {
            let got = s.draw(amount, t);
            // Zero-amount draws consume nothing and complete at once.
            let want = if amount > 0.0 {
                cumulative += amount;
                t.max(cumulative / rate)
            } else {
                t
            };
            prop_assert!(
                (got - want).abs() <= 1e-6 * want.max(1.0),
                "draw of {amount} at {t}: got {got}, fluid oracle {want}"
            );
        }
    }

    /// Per-stream fluid exactness survives arbitrary interleaving with
    /// the other product through `Pool::consume` — the cross-stream
    /// coupling the old single-clock pool got wrong.
    #[test]
    fn pool_streams_stay_independent(
        seq in proptest::collection::vec(
            (0u16..64, 0u16..16, 0u16..400), 1..40),
    ) {
        let (zero_rate, pi8_rate) = (0.5, 0.05);
        let mut pool = Pool::new(zero_rate * 1000.0, pi8_rate * 1000.0,
                                 f64::INFINITY, f64::INFINITY);
        let mut zero_cum = 0.0f64;
        let mut pi8_cum = 0.0f64;
        let mut t = 0.0f64;
        for &(zeros, pi8, gap) in &seq {
            t += gap as f64 / 16.0;
            let (zeros, pi8) = (zeros as f64 / 8.0, pi8 as f64 / 8.0);
            zero_cum += zeros;
            pi8_cum += pi8;
            let got = pool.consume(zeros, pi8, t);
            let zero_done = if zeros > 0.0 { t.max(zero_cum / zero_rate) } else { t };
            let pi8_done = if pi8 > 0.0 { t.max(pi8_cum / pi8_rate) } else { t };
            let want = zero_done.max(pi8_done);
            prop_assert!(
                (got - want).abs() <= 1e-6 * want.max(1.0),
                "consume({zeros}, {pi8}) at {t}: got {got}, oracle {want}"
            );
        }
    }

    /// A finite buffer only wastes production — completions are never
    /// *earlier* than the fluid oracle — and never holds more than the
    /// buffer: after any history plus a long idle, a draw of
    /// `buffer + x` waits exactly `x / rate`.
    #[test]
    fn finite_buffer_never_creates_tokens(
        seq in proptest::collection::vec((0u16..200, 0u16..400), 0..30),
        rate_x16 in 1u32..64,
        buffer_x8 in 1u32..80,
        extra_x8 in 1u32..80,
    ) {
        let rate = rate_x16 as f64 / 16.0;
        let buffer = buffer_x8 as f64 / 8.0;
        let mut s = TokenStream::new(rate, buffer);
        let mut cumulative = 0.0f64;
        let mut last = 0.0f64;
        for (amount, t) in draws(&seq) {
            let got = s.draw(amount, t);
            if amount > 0.0 {
                cumulative += amount;
                let floor = t.max(cumulative / rate);
                prop_assert!(
                    got >= floor - 1e-6 * floor.max(1.0),
                    "finite buffer completed draw at {got}, before fluid floor {floor}"
                );
            }
            last = got.max(t);
        }
        // Idle long enough to fill the bucket, then overdraw it.
        let idle_end = last + buffer / rate + 1000.0;
        let extra = extra_x8 as f64 / 8.0;
        let got = s.draw(buffer + extra, idle_end);
        let want = idle_end + extra / rate;
        prop_assert!(
            (got - want).abs() <= 1e-6 * want,
            "overdraw after idle: got {got}, want {want} (buffer cap violated)"
        );
    }

    /// Splitting one demand into two back-to-back draws never
    /// completes later than the combined draw (independent accrual can
    /// only help).
    #[test]
    fn split_draws_never_lose_to_combined(
        zeros_x8 in 1u16..64,
        pi8_x8 in 0u16..16,
        t0_x16 in 0u16..800,
        zero_rate_x16 in 1u32..64,
        pi8_rate_x16 in 1u32..64,
    ) {
        let zeros = zeros_x8 as f64 / 8.0;
        let pi8 = pi8_x8 as f64 / 8.0;
        let t0 = t0_x16 as f64 / 16.0;
        let zr = zero_rate_x16 as f64 * 1000.0 / 16.0;
        let pr = pi8_rate_x16 as f64 * 1000.0 / 16.0;
        let mut combined = Pool::new(zr, pr, 8.0, 4.0);
        let mut split = Pool::new(zr, pr, 8.0, 4.0);
        let whole = combined.consume(zeros, pi8, t0);
        let first = split.consume(zeros / 2.0, pi8 / 2.0, t0);
        let second = split.consume(zeros / 2.0, pi8 / 2.0, first);
        prop_assert!(
            second <= whole + 1e-9 * whole.max(1.0),
            "split draws ({first}, {second}) ended after combined {whole}"
        );
    }
}

/// The simulator is a pure function of its inputs: repeated runs over
/// a shared context and fresh contexts agree bit for bit, for every
/// architecture.
#[test]
fn simulation_outcomes_are_reproducible() {
    let mut c = Circuit::named(12, "det");
    for layer in 0..5 {
        for q in 0..12 {
            c.h(q);
        }
        for q in 0..11 {
            c.cx(q, (q + 1 + layer) % 12);
        }
        c.t(layer % 12);
    }
    let ctx = SimContext::new(&c);
    for arch in [
        Arch::FullyMultiplexed,
        Arch::Qla,
        Arch::Cqla { cache_slots: 4 },
        Arch::Qalypso { tile_qubits: 4 },
    ] {
        for area in [300.0, 3e4, 3e6] {
            let first = ctx.simulate(arch, area);
            assert_eq!(ctx.simulate(arch, area), first);
            assert_eq!(SimContext::new(&c).simulate(arch, area), first);
        }
    }
}
