//! End-to-end transport byte-identity for the `qods-serve` daemon:
//! pipes a 3-request batch (one repeat, to exercise the cache)
//! through the real binary on **both transports** and asserts the
//! served outputs are byte-identical to each other and to direct
//! `Registry` runs of the same resolved configuration — the CI
//! service-smoke contract.

use qods_core::experiment::StudyContext;
use qods_core::registry::Registry;
use qods_core::study::StudyConfig;
use qods_net::Client;
use qods_service::Overrides;
use serde::{Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// The overrides all three requests share, as the daemon will parse
/// them.
fn batch_overrides() -> Overrides {
    Overrides {
        n_bits: Some(8),
        synth_max_t: Some(8),
        sweep_points: Some(5),
        profile_samples: Some(32),
        ..Overrides::default()
    }
}

const OVERRIDES_JSON: &str =
    "{\"n_bits\":8,\"synth_max_t\":8,\"sweep_points\":5,\"profile_samples\":32}";

fn run_daemon(input: &str) -> Vec<String> {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qods-serve"))
        .args(["--base", "quick", "--threads", "2", "--artifacts", ""])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qods-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success(), "qods-serve failed: {out:?}");
    String::from_utf8(out.stdout)
        .expect("utf-8 output")
        .lines()
        .map(str::to_string)
        .collect()
}

/// Spawns `qods-serve --listen 127.0.0.1:0` and parses the resolved
/// address from its `listening on` stderr line.
fn spawn_tcp_daemon(extra_args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qods-serve"))
        .args([
            "--base",
            "quick",
            "--threads",
            "2",
            "--artifacts",
            "",
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra_args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qods-serve --listen");
    let stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut addr = None;
    for line in stderr.lines() {
        let line = line.expect("stderr line");
        if let Some(rest) = line.strip_prefix("qods-serve: listening on ") {
            addr = Some(rest.trim().parse().expect("socket address"));
            break;
        }
    }
    (child, addr.expect("daemon printed its listening address"))
}

#[test]
fn tcp_transport_serves_the_same_bytes_as_stdio() {
    let r1 = format!(
        "{{\"id\":\"r1\",\"experiments\":[\"table2\",\"table9\"],\"overrides\":{OVERRIDES_JSON}}}"
    );
    let r2 = format!("{{\"id\":\"r2\",\"experiments\":[\"fig7\"],\"overrides\":{OVERRIDES_JSON}}}");
    let batch = [r1.as_str(), r2.as_str(), r1.as_str()];

    let stdio_lines = run_daemon(&format!("{}\n{}\n{}\n", batch[0], batch[1], batch[2]));

    let (mut child, addr) = spawn_tcp_daemon(&[]);
    let mut client = Client::connect(addr).expect("connect");
    let tcp_lines: Vec<String> = batch
        .iter()
        .map(|line| {
            client
                .roundtrip(line)
                .expect("roundtrip")
                .expect("one response line per request")
        })
        .collect();

    assert_eq!(
        stdio_lines, tcp_lines,
        "the two transports must serve byte-identical response lines"
    );

    // Graceful shutdown: acknowledged, then the process exits 0.
    let ack = client.shutdown().expect("shutdown acknowledged");
    assert!(ack.contains("\"event\":\"shutting_down\""), "{ack}");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "shutdown must exit 0, got {status:?}");
}

#[test]
fn served_outputs_are_byte_identical_to_direct_registry_runs() {
    let r1 = format!(
        "{{\"id\":\"r1\",\"experiments\":[\"table2\",\"table9\"],\"overrides\":{OVERRIDES_JSON}}}"
    );
    let r2 = format!("{{\"id\":\"r2\",\"experiments\":[\"fig7\"],\"overrides\":{OVERRIDES_JSON}}}");
    let lines = run_daemon(&format!("{r1}\n{r2}\n{r1}\n"));
    assert_eq!(lines.len(), 3, "one result line per request: {lines:?}");

    let parsed: Vec<Value> = lines
        .iter()
        .map(|l| serde_json::from_str(l).expect("result line parses"))
        .collect();
    for (i, v) in parsed.iter().enumerate() {
        assert_eq!(
            v.get("event").and_then(|e| match e {
                Value::Str(s) => Some(s.as_str()),
                _ => None,
            }),
            Some("result"),
            "line {i} is not a result: {}",
            lines[i]
        );
    }

    // The repeat (line 3) is served from cache, byte-identically.
    let records_json = |v: &Value| {
        serde_json::to_string(v.get("records").expect("records field")).expect("render")
    };
    assert_eq!(parsed[2].get("context_hit"), Some(&Value::Bool(true)));
    assert_eq!(parsed[2].get("output_hits"), Some(&Value::Int(2)));
    assert_eq!(parsed[2].get("computed"), Some(&Value::Int(0)));
    assert_eq!(
        records_json(&parsed[0]),
        records_json(&parsed[2]),
        "cache-served repeat must be byte-identical to the first answer"
    );
    // Requests sharing a config share its hash.
    assert_eq!(
        parsed[0].get("config"),
        Some(&parsed[1].get("config").expect("config").clone())
    );

    // Direct registry runs of the same resolved configuration must
    // produce the exact bytes the daemon served.
    let config = batch_overrides().resolve(&StudyConfig::smoke());
    let ctx = StudyContext::new(config);
    let registry = Registry::paper();
    for (line, ids) in [
        (&parsed[0], vec!["table2", "table9"]),
        (&parsed[1], vec!["fig7"]),
    ] {
        let direct = registry.run_selected(&ids, &ctx).expect("known ids");
        let served = line
            .get("records")
            .and_then(Value::as_array)
            .expect("records array");
        assert_eq!(served.len(), direct.len());
        for (s, d) in served.iter().zip(&direct) {
            let served_output =
                serde_json::to_string(s.get("output").expect("output field")).expect("render");
            let direct_output = serde_json::to_string(&d.output.to_value()).expect("render");
            assert_eq!(
                served_output, direct_output,
                "served `{}` differs from the direct registry run",
                d.id
            );
        }
    }
}

#[test]
fn bad_lines_answer_typed_errors_and_do_not_kill_the_daemon() {
    let lines = run_daemon(
        "this is not json\n\
         {\"experiments\":[\"nope\"]}\n\
         {\"id\":\"dup\",\"experiments\":[\"table5\",\"table6\"]}\n\
         {\"id\":\"ok\",\"experiments\":[\"fig6\"]}\n",
    );
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("\"event\":\"error\"") && lines[0].contains("bad request"));
    assert!(lines[1].contains("unknown experiment id `nope`"));
    assert!(lines[2].contains("duplicate experiment id `table6`"));
    assert!(lines[3].contains("\"event\":\"result\"") && lines[3].contains("\"id\":\"ok\""));
}

#[test]
fn progress_mode_streams_per_experiment_lines() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qods-serve"))
        .args([
            "--base",
            "quick",
            "--threads",
            "2",
            "--progress",
            "--artifacts",
            "",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qods-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(
            format!("{{\"id\":\"p\",\"experiments\":[\"table2\",\"fig6\"],\"overrides\":{OVERRIDES_JSON}}}\n")
                .as_bytes(),
        )
        .expect("write request");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf-8");
    let started = text
        .lines()
        .filter(|l| l.contains("\"event\":\"started\""))
        .count();
    let experiments = text
        .lines()
        .filter(|l| l.contains("\"event\":\"experiment\""))
        .count();
    let results = text
        .lines()
        .filter(|l| l.contains("\"event\":\"result\""))
        .count();
    assert_eq!((started, experiments, results), (1, 2, 1), "{text}");
}
