//! Chaos suite: the real `qods-serve` binary under deterministic
//! fault injection (`QODS_FAULT_PLAN`, see `qods-fault`). The serving
//! contract under fire: the daemon never crashes, every failed
//! request answers a *typed* error line, surviving coalesced jobs
//! execute exactly once, and shutdown still drains and exits 0.
//!
//! The storm test alone injects >100 faults (a scatter of delays over
//! the Monte-Carlo chunk site plus a worker panic); the other tests
//! add disconnects, deadline expiries, and oversize-line floods.

use qods_fault::{FaultAction, FaultPlan};
use qods_net::protocol::{kind, kind_fragment};
use qods_net::Client;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

/// Runs the stdio daemon with a fault plan armed, feeding `input` and
/// returning (stdout lines, exit success).
fn run_stdio_chaos(plan: &FaultPlan, extra_args: &[&str], input: &str) -> (Vec<String>, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qods-serve"))
        .args(["--base", "quick", "--threads", "2", "--artifacts", ""])
        .args(extra_args)
        .env(qods_fault::FAULT_PLAN_ENV, plan.render())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn qods-serve");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("daemon exits");
    let lines = String::from_utf8(out.stdout)
        .expect("utf-8 output")
        .lines()
        .map(str::to_string)
        .collect();
    (lines, out.status.success())
}

/// Spawns `qods-serve --listen 127.0.0.1:0` with a fault plan armed
/// and parses the resolved address from its stderr.
fn spawn_tcp_chaos(plan: &FaultPlan, extra_args: &[&str]) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qods-serve"))
        .args([
            "--base",
            "quick",
            "--threads",
            "2",
            "--artifacts",
            "",
            "--listen",
            "127.0.0.1:0",
        ])
        .args(extra_args)
        .env(qods_fault::FAULT_PLAN_ENV, plan.render())
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qods-serve --listen");
    let stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let mut addr = None;
    for line in stderr.lines() {
        let line = line.expect("stderr line");
        if let Some(rest) = line.strip_prefix("qods-serve: listening on ") {
            addr = Some(rest.trim().parse().expect("socket address"));
            break;
        }
    }
    (child, addr.expect("daemon printed its listening address"))
}

/// One fig4 Monte-Carlo job line: 20480 trials = 20 chunks per
/// strategy, 80 `mc.chunk` operations per job — the fault surface the
/// storm scatters over. The seed varies per job so nothing coalesces
/// or caches across jobs.
fn mc_job_line(id: &str, seed: u64) -> String {
    format!(
        "{{\"id\":\"{id}\",\"experiments\":[\"fig4\"],\
         \"overrides\":{{\"mc_trials\":20480,\"seed\":{seed}}}}}"
    )
}

#[test]
fn a_fault_storm_answers_every_request_typed_and_exits_zero() {
    // >100 injected faults: 120 one-shot delays scattered over the
    // first 500 Monte-Carlo chunk operations (the healthy jobs below
    // perform ~640, so every one fires), plus a worker panic that
    // kills the first job outright.
    let plan = FaultPlan::new()
        .once("pool.worker", 1, FaultAction::Panic)
        .scatter("mc.chunk", FaultAction::Delay(1), 42, 120, 500);
    assert!(plan.len() >= 100, "the storm must schedule >=100 faults");

    let mut input = String::new();
    input.push_str(&mc_job_line("doomed", 1));
    input.push('\n');
    for j in 0..8 {
        input.push_str(&mc_job_line(&format!("h{j}"), 100 + j));
        input.push('\n');
    }
    input.push_str("{\"verb\":\"stats\"}\n");

    let (lines, ok) = run_stdio_chaos(&plan, &[], &input);
    assert!(ok, "the daemon must drain and exit 0 under the storm");
    assert_eq!(lines.len(), 10, "one answer per line: {lines:#?}");

    // The panicked job is a typed internal_error; every other job
    // line is a clean result (delays perturb timing, never output).
    assert!(
        lines[0].contains("\"event\":\"error\"")
            && lines[0].contains(&kind_fragment(kind::INTERNAL))
            && lines[0].contains("\"id\":\"doomed\""),
        "{}",
        lines[0]
    );
    for (j, line) in lines[1..9].iter().enumerate() {
        assert!(
            line.contains("\"event\":\"result\"") && line.contains(&format!("\"id\":\"h{j}\"")),
            "job h{j} must survive the delay storm: {line}"
        );
    }
    let stats = &lines[9];
    assert!(stats.contains("\"event\":\"stats\""), "{stats}");
    assert!(
        stats.contains("\"panics_caught\":1"),
        "the caught panic must be counted: {stats}"
    );
    assert!(
        stats.contains("\"results\":8") && stats.contains("\"errors\":1"),
        "{stats}"
    );
}

#[test]
fn expired_deadlines_answer_typed_errors_without_killing_the_daemon() {
    // No injected faults here — the chaos is a server-wide 1 ms
    // budget against a job that needs far more, plus an explicit
    // generous per-request budget proving the override direction.
    let heavy = "{\"id\":\"heavy\",\"experiments\":[\"fig4\"],\
                 \"overrides\":{\"mc_trials\":5000000}}";
    let light = "{\"id\":\"light\",\"experiments\":[\"table9\"],\
                 \"overrides\":{\"n_bits\":8,\"sweep_points\":5},\
                 \"deadline_ms\":600000}";
    let input = format!("{heavy}\n{light}\n{{\"verb\":\"stats\"}}\n");
    let (lines, ok) = run_stdio_chaos(&FaultPlan::new(), &["--default-deadline", "1"], &input);
    assert!(ok, "deadline expiry must not kill the daemon");
    assert_eq!(lines.len(), 3, "{lines:#?}");
    assert!(
        lines[0].contains(&kind_fragment(kind::DEADLINE_EXCEEDED)) && lines[0].contains("deadline"),
        "{}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"event\":\"result\"") && lines[1].contains("\"id\":\"light\""),
        "an explicit budget must beat the server default: {}",
        lines[1]
    );
    assert!(lines[2].contains("\"deadline_exceeded\":1"), "{}", lines[2]);
    assert!(lines[2].contains("\"panics_caught\":0"), "{}", lines[2]);
}

#[test]
fn oversize_lines_answer_bad_request_and_the_stream_recovers() {
    let flood = "x".repeat(4096);
    let input = format!("{{\"big\":\"{flood}\"}}\n{{\"verb\":\"ping\"}}\n{{\"verb\":\"stats\"}}\n");
    let (lines, ok) = run_stdio_chaos(&FaultPlan::new(), &["--max-line-len", "256"], &input);
    assert!(ok, "an oversize line must not kill the daemon");
    assert_eq!(lines.len(), 3, "{lines:#?}");
    assert!(
        lines[0].contains(&kind_fragment(kind::BAD_REQUEST)) && lines[0].contains("byte cap"),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"event\":\"pong\""), "{}", lines[1]);
    assert!(lines[2].contains("\"lines_rejected\":1"), "{}", lines[2]);
}

#[test]
fn coalesced_survivors_execute_exactly_once_under_injected_delays() {
    // The leader's first chunk stalls 300 ms, holding the job in
    // flight long enough that every concurrent duplicate coalesces
    // onto it instead of executing.
    const CLIENTS: usize = 4;
    let plan = FaultPlan::new().once("mc.chunk", 1, FaultAction::Delay(300));
    let (mut child, addr) = spawn_tcp_chaos(&plan, &[]);

    let job = mc_job_line("dup", 7);
    let barrier = std::sync::Barrier::new(CLIENTS);
    let answers: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (job, barrier) = (&job, &barrier);
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client
                        .roundtrip(job)
                        .expect("roundtrip")
                        .expect("one answer")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    for a in &answers {
        assert!(a.contains("\"event\":\"result\""), "{a}");
        assert_eq!(a, &answers[0], "coalesced answers must be byte-identical");
    }

    let mut probe = Client::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats verb");
    assert_eq!(
        stats.executed, 1,
        "exactly one execution for {CLIENTS} duplicates"
    );
    assert_eq!(stats.coalesced, (CLIENTS - 1) as u64);
    let ack = probe.shutdown().expect("shutdown acknowledged");
    assert!(ack.contains("\"event\":\"shutting_down\""), "{ack}");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "shutdown must exit 0, got {status:?}");
}

#[test]
fn injected_disconnects_are_survived_and_transparently_retried() {
    // The second served line drops the connection mid-request; the
    // retrying client reconnects and the third attempt answers.
    let plan = FaultPlan::new().once("net.conn", 2, FaultAction::Disconnect);
    let (mut child, addr) = spawn_tcp_chaos(&plan, &[]);

    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("line 1 serves normally");
    let answer = client
        .roundtrip_retrying("{\"verb\":\"ping\"}")
        .expect("retry path answers")
        .expect("an answer after reconnect");
    assert!(answer.contains("\"event\":\"pong\""), "{answer}");
    assert!(
        client.retries() >= 1,
        "the injected disconnect must have cost at least one retry"
    );

    let mut probe = Client::connect(addr).expect("connect probe");
    let ack = probe.shutdown().expect("shutdown acknowledged");
    assert!(ack.contains("\"event\":\"shutting_down\""), "{ack}");
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "shutdown must exit 0, got {status:?}");
}
