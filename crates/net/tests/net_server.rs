//! Integration tests of the TCP transport run in-process: a
//! [`NetServer`] on an ephemeral port, real [`Client`] connections,
//! and the serving contracts the ISSUE pins down — typed overload
//! shedding, coalescing across connections, mid-request disconnect
//! survival, and graceful drain on shutdown.
//!
//! Timing discipline: anything that must observe an *in-flight* job
//! first parks a deliberately slow `fig4` Monte-Carlo job (seconds of
//! work) and then polls the `stats` verb — which bypasses admission —
//! until `in_flight` reports it, so the assertions race a window of
//! seconds, not microseconds.

use qods_net::protocol::{kind, kind_fragment};
use qods_net::{Client, NetServer, ServeCore, ServeOptions, StatsLine};
use qods_service::prelude::*;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// A fast job at smoke scale.
const QUICK_JOB: &str =
    "{\"id\":\"quick\",\"experiments\":[\"table9\"],\"overrides\":{\"n_bits\":8}}";

/// A deliberately slow job: `fig4` at a trial count that takes
/// seconds even in debug builds, so tests can observe it in flight.
const SLOW_JOB: &str =
    "{\"id\":\"slow\",\"experiments\":[\"fig4\"],\"overrides\":{\"mc_trials\":400000}}";

fn start_server(caching: bool, options: ServeOptions) -> (SocketAddr, JoinHandle<()>) {
    let scheduler = Scheduler::with_options(StudyConfig::smoke(), 2, caching);
    let core = Arc::new(ServeCore::new(scheduler, options));
    let server = NetServer::bind(core, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.serve().expect("serve returns cleanly"));
    (addr, handle)
}

/// Polls the `stats` verb on a dedicated connection until `pred`
/// holds (or panics after `secs` seconds).
fn await_stats(addr: SocketAddr, secs: u64, pred: impl Fn(&StatsLine) -> bool) -> StatsLine {
    let mut probe = Client::connect(addr).expect("connect probe");
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let stats = probe.stats().expect("stats verb answers");
        if pred(&stats) {
            return stats;
        }
        assert!(
            Instant::now() < deadline,
            "stats condition not reached in {secs}s: {stats:?}"
        );
        thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn verbs_answer_and_shutdown_drains_cleanly() {
    let (addr, server) = start_server(true, ServeOptions::default());
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("pong");

    let result = client
        .roundtrip(QUICK_JOB)
        .expect("roundtrip")
        .expect("one result line");
    assert!(result.contains("\"event\":\"result\""), "{result}");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.results, 1);
    assert_eq!(stats.executed, 1);
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.connections_total, 1);
    assert_eq!(stats.latency.count, 1);
    assert!(stats.latency.p99_us >= stats.latency.p50_us);

    let ack = client.shutdown().expect("ack");
    assert!(ack.contains("\"event\":\"shutting_down\""), "{ack}");
    server.join().expect("server thread exits");
    // The drained server closed the connection.
    assert_eq!(client.recv_line().expect("read"), None);
}

#[test]
fn overload_burst_answers_typed_errors_and_the_server_survives() {
    // One execution slot, no wait queue: any second concurrent job
    // must shed.
    let (addr, server) = start_server(
        true,
        ServeOptions {
            max_inflight: 1,
            max_queue: 0,
            ..ServeOptions::default()
        },
    );

    let mut slow = Client::connect(addr).expect("connect slow");
    slow.send_line(SLOW_JOB).expect("send slow job");
    await_stats(addr, 60, |s| s.in_flight == 1);

    // The slot is held for seconds; these refusals race nothing.
    let mut burst = Client::connect(addr).expect("connect burst");
    for i in 0..3 {
        let line = burst
            .roundtrip("{\"id\":\"shed\",\"experiments\":[\"table9\"]}")
            .expect("roundtrip")
            .expect("typed refusal");
        assert!(
            line.contains(&kind_fragment(kind::OVERLOADED)),
            "burst {i} got {line}"
        );
        assert!(line.contains("\"id\":\"shed\""), "{line}");
    }
    let stats = await_stats(addr, 5, |s| s.overloaded >= 3);
    assert_eq!(stats.errors, stats.overloaded);

    // The parked job still completes: shedding never kills work.
    let result = slow.recv_line().expect("read").expect("slow job answers");
    assert!(result.contains("\"event\":\"result\""), "{result}");
    assert!(result.contains("\"id\":\"slow\""), "{result}");

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("ack");
    server.join().expect("server thread exits");
}

#[test]
fn concurrent_duplicates_coalesce_onto_one_execution() {
    // Caching OFF: any duplicate that is *not* coalesced would
    // re-execute, so the counters below prove single-flight, not the
    // cache.
    let (addr, server) = start_server(false, ServeOptions::default());

    let mut leader = Client::connect(addr).expect("connect leader");
    leader.send_line(SLOW_JOB).expect("send leader job");
    await_stats(addr, 60, |s| s.in_flight == 1);

    // Joined while the leader is verifiably in flight: these must
    // coalesce, not execute.
    let followers: Vec<JoinHandle<String>> = (0..3)
        .map(|i| {
            thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect follower");
                let line = format!(
                    "{{\"id\":\"f{i}\",\"experiments\":[\"fig4\"],\"overrides\":{{\"mc_trials\":400000}}}}"
                );
                c.roundtrip(&line).expect("roundtrip").expect("result line")
            })
        })
        .collect();
    await_stats(addr, 60, |s| s.coalesced >= 3 || s.executed > 1);

    let leader_line = leader.recv_line().expect("read").expect("leader answers");
    let follower_lines: Vec<String> = followers
        .into_iter()
        .map(|h| h.join().expect("follower thread"))
        .collect();

    let stats = await_stats(addr, 5, |s| s.results >= 4);
    assert_eq!(stats.executed, 1, "duplicates must execute exactly once");
    assert_eq!(stats.coalesced, 3);

    // Identical payloads, each echoing its own correlation id.
    let payload = |line: &str| {
        line.split("\"config\":")
            .nth(1)
            .expect("config")
            .to_string()
    };
    assert!(leader_line.contains("\"id\":\"slow\""));
    for (i, line) in follower_lines.iter().enumerate() {
        assert!(line.contains(&format!("\"id\":\"f{i}\"")), "{line}");
        assert_eq!(
            payload(line),
            payload(&leader_line),
            "coalesced responses must carry the leader's bytes"
        );
    }

    Client::connect(addr)
        .expect("connect")
        .shutdown()
        .expect("ack");
    server.join().expect("server thread exits");
}

#[test]
fn mid_request_disconnects_do_not_kill_the_server_or_the_job() {
    let (addr, server) = start_server(false, ServeOptions::default());

    // Park a job, then slam the connection shut while it runs.
    {
        let mut doomed = Client::connect(addr).expect("connect");
        doomed.send_line(SLOW_JOB).expect("send");
        await_stats(addr, 60, |s| s.in_flight == 1);
    } // drop = disconnect, result line has nowhere to go

    // The orphaned job still runs to completion (a coalesced follower
    // may depend on it), and the server keeps serving. The probe
    // itself is one connection; the dead one must be reaped.
    let stats = await_stats(addr, 60, |s| s.in_flight == 0 && s.connections == 1);
    assert_eq!(stats.executed, 1);

    let mut client = Client::connect(addr).expect("connect survivor");
    let result = client
        .roundtrip(QUICK_JOB)
        .expect("roundtrip")
        .expect("result line");
    assert!(result.contains("\"event\":\"result\""), "{result}");

    client.shutdown().expect("ack");
    server.join().expect("server thread exits");
}

#[test]
fn shutdown_drains_the_in_flight_job_before_exiting() {
    let (addr, server) = start_server(true, ServeOptions::default());

    let mut worker = Client::connect(addr).expect("connect worker");
    worker.send_line(SLOW_JOB).expect("send");
    await_stats(addr, 60, |s| s.in_flight == 1);

    // Shut down from a second connection while the job is running.
    let mut admin = Client::connect(addr).expect("connect admin");
    let ack = admin.shutdown().expect("ack");
    assert!(ack.contains("\"event\":\"shutting_down\""), "{ack}");

    // Drain contract: the in-flight job answers before the server
    // exits — then the connection closes.
    let result = worker.recv_line().expect("read").expect("drained result");
    assert!(result.contains("\"event\":\"result\""), "{result}");
    assert!(result.contains("\"id\":\"slow\""), "{result}");
    assert_eq!(worker.recv_line().expect("read"), None);

    server.join().expect("server thread exits");

    // Late jobs (raced against the drain) would have answered
    // `shutting_down`; late *connections* are simply refused.
    assert!(Client::connect(addr).is_err(), "listener is gone");
}
