//! End-to-end observability over the real TCP transport: a traced
//! serve run covers every stage of the pipeline, its Chrome export
//! parses back losslessly, and every exported event sits on a lane
//! the metadata names — the properties that make the trace loadable
//! (and legible) in the Perfetto UI. Also exercises the `metrics`
//! verb against the same run's `stats` verb.
//!
//! The tracer is process-global; tests in this binary serialize on
//! one lock so a parallel test's spans never leak into a drain.

use qods_net::{Client, NetServer, ServeCore, ServeOptions};
use qods_obs::trace::Phase;
use qods_service::prelude::*;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn start_server(options: ServeOptions) -> (SocketAddr, JoinHandle<()>) {
    let scheduler = Scheduler::with_options(StudyConfig::smoke(), 2, true);
    let core = Arc::new(ServeCore::new(scheduler, options));
    let server = NetServer::bind(core, "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.serve().expect("serve returns cleanly"));
    (addr, handle)
}

fn job(id: usize) -> String {
    format!(
        "{{\"id\":\"job-{id}\",\"experiments\":[\"fig4\",\"table2\"],\
         \"overrides\":{{\"n_bits\":6,\"mc_trials\":300,\"seed\":{}}}}}",
        40 + id % 2
    )
}

#[test]
fn chrome_export_round_trips_a_real_serve_run_on_named_lanes() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let tracer = qods_obs::trace::tracer();
    tracer.drain();
    qods_obs::trace::enable();

    let (addr, server) = start_server(ServeOptions::default());
    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    for i in 0..3 {
        let line = if i % 2 == 0 { &mut a } else { &mut b }
            .roundtrip(&job(i))
            .expect("roundtrip")
            .expect("result line");
        assert!(line.contains("\"event\":\"result\""), "{line}");
    }
    a.shutdown().expect("ack");
    server.join().expect("server exits");

    qods_obs::trace::disable();
    let events = tracer.drain();

    // The run covered every stage of the serving path.
    for stage in ["net.", "svc.", "compile.", "pool."] {
        assert!(
            events
                .iter()
                .any(|e| e.phase == Phase::Span && e.site.starts_with(stage)),
            "no `{stage}*` span in a traced serve run"
        );
    }

    let text = qods_obs::export::to_chrome(&events);
    let parsed = qods_obs::export::parse_chrome(&text).expect("export parses back");

    // Lossless: one X per span, one i per instant, one thread_name
    // metadata record per distinct lane.
    let spans = events.iter().filter(|e| e.phase == Phase::Span).count();
    let instants = events.iter().filter(|e| e.phase == Phase::Instant).count();
    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert_eq!(parsed.iter().filter(|e| e.ph == "X").count(), spans);
    assert_eq!(parsed.iter().filter(|e| e.ph == "i").count(), instants);
    assert_eq!(parsed.iter().filter(|e| e.ph == "M").count(), lanes.len());

    // Every event references a lane the metadata names, and every
    // name is one the exporter mints ("main" / "worker-N" /
    // "thread-N") — what Perfetto shows as track titles.
    let named: Vec<u64> = parsed
        .iter()
        .filter(|e| e.ph == "M")
        .map(|e| e.tid)
        .collect();
    for e in &parsed {
        assert!(
            named.contains(&e.tid),
            "event `{}` on unnamed lane {}",
            e.name,
            e.tid
        );
    }
    for lane in lanes {
        let name = qods_obs::export::lane_name(lane);
        assert!(
            name == "main" || name.starts_with("worker-") || name.starts_with("thread-"),
            "unexpected lane name `{name}`"
        );
    }
}

#[test]
fn metrics_verb_agrees_with_stats_and_spans_stay_off_when_disabled() {
    let _guard = TRACE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    qods_obs::trace::disable();
    qods_obs::trace::tracer().drain();

    let (addr, server) = start_server(ServeOptions::default());
    let mut client = Client::connect(addr).expect("connect");
    for i in 0..2 {
        client
            .roundtrip(&job(i))
            .expect("roundtrip")
            .expect("result line");
    }
    let stats = client.stats().expect("stats verb");
    let metrics = client.metrics().expect("metrics verb").metrics;
    assert_eq!(
        metrics.counters.get(qods_obs::sites::NET_REQUESTS),
        Some(&stats.requests)
    );
    assert_eq!(
        metrics.counters.get(qods_obs::sites::NET_RESULTS),
        Some(&stats.results)
    );
    assert_eq!(
        metrics.counters.get(qods_obs::sites::SVC_EXECUTED),
        Some(&stats.executed)
    );
    assert!(
        metrics
            .counters
            .contains_key(qods_obs::sites::CACHE_CONTEXT_MISSES),
        "cache counters merged into the snapshot"
    );
    assert!(
        metrics
            .counters
            .contains_key(qods_obs::sites::STORE_COMPUTED),
        "artifact-store counters merged into the snapshot"
    );
    client.shutdown().expect("ack");
    server.join().expect("server exits");

    // Nothing traced while disabled: the fast path records no spans.
    assert!(qods_obs::trace::tracer().drain().is_empty());
}
