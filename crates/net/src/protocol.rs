//! The NDJSON wire protocol both transports (stdio and TCP) speak.
//!
//! One JSON object per input line. A line is either a **job** — a
//! [`RunRequest`] (`{"id":..,"experiments":[..],"overrides":{..}}`)
//! answered by exactly one `result` or `error` line — or a **verb**
//! (`{"verb":"stats"}`): a control-plane request answered by one
//! typed line. Verbs bypass admission control, so `stats` still
//! answers while the job queue is refusing work.
//!
//! Result lines carry no timing and are rendered from deterministic
//! fields only, so for a fixed request sequence the response stream
//! is byte-reproducible — the transport byte-identity tests pipe the
//! same batch through stdio and TCP and diff the bytes against direct
//! `Registry` runs. These structs moved verbatim from the old stdio
//! daemon; changing their field set or order changes served bytes and
//! fails those tests.

use qods_obs::{MetricsSnapshot, RobustnessSnapshot};
use qods_service::prelude::*;
use serde::{Deserialize, Serialize, Value};

/// One experiment's result in a `result` line (no timing: the line
/// must be byte-reproducible for a fixed request sequence).
#[derive(Serialize)]
pub struct RecordLine {
    /// Experiment id.
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// The full experiment output.
    pub output: qods_core::experiment::ExperimentOutput,
}

/// The one `result` line a successful job answers with.
#[derive(Serialize)]
pub struct ResultLine {
    /// Always `"result"`.
    pub event: &'static str,
    /// The request's correlation id (the *caller's*, also for
    /// coalesced responses).
    pub id: Option<String>,
    /// Content hash of the resolved configuration, hex.
    pub config: String,
    /// Whether the study context came from the cache.
    pub context_hit: bool,
    /// Experiments served from the output cache.
    pub output_hits: usize,
    /// Experiments actually computed.
    pub computed: usize,
    /// One record per requested experiment, in request order.
    pub records: Vec<RecordLine>,
}

/// The canonical wire error-`kind` tags, as data. [`ErrorKind::tag`]
/// returns these constants, every in-repo assertion on a served
/// `kind` goes through [`kind_fragment`], and the `qods-lint` S1 rule
/// cross-checks any `"kind":"..."` string literal in the workspace
/// against [`kind::ALL`] — so a drifted or typo-ed kind literal is a
/// lint failure, not a test that silently matches nothing.
pub mod kind {
    /// The line was not a parseable request.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The scheduler rejected the job.
    pub const REJECTED: &str = "rejected";
    /// Admission control refused the job.
    pub const OVERLOADED: &str = "overloaded";
    /// The server is draining.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// Per-connection request limit exceeded.
    pub const CONNECTION_LIMIT: &str = "connection_limit";
    /// The job panicked; the daemon caught it and kept serving.
    pub const INTERNAL: &str = "internal_error";
    /// The job overran its deadline budget.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The connection was reaped by the idle timeout.
    pub const IDLE_TIMEOUT: &str = "idle_timeout";

    /// Every wire kind, in [`super::ErrorKind`] declaration order —
    /// the table the S1 lint rule and the exhaustiveness test check
    /// against.
    pub const ALL: &[&str] = &[
        BAD_REQUEST,
        REJECTED,
        OVERLOADED,
        SHUTTING_DOWN,
        CONNECTION_LIMIT,
        INTERNAL,
        DEADLINE_EXCEEDED,
        IDLE_TIMEOUT,
    ];
}

/// The `"kind":"..."` JSON fragment an error line of kind `tag`
/// carries — the one way in-repo code and tests match a served kind,
/// so the literal cannot drift from the protocol table.
pub fn kind_fragment(tag: &str) -> String {
    format!("\"kind\":\"{tag}\"")
}

/// Why a request was refused — the typed half of an [`ErrorLine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line was not a parseable request.
    BadRequest,
    /// The scheduler rejected the job ([`ServiceError`]).
    Rejected,
    /// Admission control refused the job: queue full.
    Overloaded,
    /// The server is draining and accepts no new jobs.
    ShuttingDown,
    /// This connection exceeded its per-connection request limit.
    ConnectionLimit,
    /// The job panicked mid-execution; the scheduler caught the
    /// unwind and the daemon keeps serving.
    Internal,
    /// The job overran its `deadline_ms` budget (or the server-wide
    /// `--default-deadline`) and was cancelled at a chunk boundary.
    DeadlineExceeded,
    /// The connection went too long without completing a line and was
    /// reaped (slow-loris protection; see `--idle-timeout`).
    IdleTimeout,
}

impl ErrorKind {
    /// Every variant, in declaration order — paired with [`kind::ALL`]
    /// by the exhaustiveness test so the enum and the string table
    /// cannot drift apart.
    pub const VARIANTS: [ErrorKind; 8] = [
        ErrorKind::BadRequest,
        ErrorKind::Rejected,
        ErrorKind::Overloaded,
        ErrorKind::ShuttingDown,
        ErrorKind::ConnectionLimit,
        ErrorKind::Internal,
        ErrorKind::DeadlineExceeded,
        ErrorKind::IdleTimeout,
    ];

    /// The wire tag (`"kind"` field of an error line).
    pub fn tag(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => kind::BAD_REQUEST,
            ErrorKind::Rejected => kind::REJECTED,
            ErrorKind::Overloaded => kind::OVERLOADED,
            ErrorKind::ShuttingDown => kind::SHUTTING_DOWN,
            ErrorKind::ConnectionLimit => kind::CONNECTION_LIMIT,
            ErrorKind::Internal => kind::INTERNAL,
            ErrorKind::DeadlineExceeded => kind::DEADLINE_EXCEEDED,
            ErrorKind::IdleTimeout => kind::IDLE_TIMEOUT,
        }
    }

    /// The error kind a failed [`ServiceError`] maps to on the wire.
    pub fn of_service_error(e: &ServiceError) -> Self {
        match e {
            ServiceError::Internal { .. } => ErrorKind::Internal,
            ServiceError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
            ServiceError::Registry(_) | ServiceError::Kernel(_) => ErrorKind::Rejected,
        }
    }
}

/// The one `error` line a refused job (or unparseable line) answers
/// with. `kind` is machine-checkable; `error` is the human-readable
/// diagnostic.
#[derive(Serialize)]
pub struct ErrorLine {
    /// Always `"error"`.
    pub event: &'static str,
    /// The request's correlation id when one was parseable.
    pub id: Option<String>,
    /// Machine-checkable refusal class ([`ErrorKind::tag`]).
    pub kind: &'static str,
    /// Human-readable diagnostic.
    pub error: String,
}

impl ErrorLine {
    /// Builds an error line of the given kind.
    pub fn new(kind: ErrorKind, id: Option<String>, error: String) -> Self {
        ErrorLine {
            event: "error",
            id,
            kind: kind.tag(),
            error,
        }
    }
}

/// A `--progress` stream line.
#[derive(Serialize)]
pub struct ProgressLine {
    /// `"started"` or `"experiment"`.
    pub event: &'static str,
    /// The request's correlation id.
    pub id: Option<String>,
    /// Config hash hex (on `started`).
    pub config: Option<String>,
    /// Experiment id (on `experiment`).
    pub experiment: Option<String>,
    /// Cache hit flag.
    pub cache_hit: Option<bool>,
    /// Wall-clock seconds (on `experiment`).
    pub seconds: Option<f64>,
}

/// The control verbs a line can carry instead of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Answer one `stats` line (serving counters + latency summary).
    Stats,
    /// Answer one `metrics` line (the full registry snapshot: every
    /// counter, gauge, and histogram by site name, plus trace-buffer
    /// accounting).
    Metrics,
    /// Answer one `pong` line (liveness probe).
    Ping,
    /// Acknowledge, stop accepting, drain in-flight jobs, exit 0.
    Shutdown,
}

/// One parsed input line.
#[derive(Debug)]
pub enum Request {
    /// A job to run.
    Job(Box<RunRequest>),
    /// A control verb.
    Verb(Verb),
}

/// Parses one wire line: an object with a `"verb"` key is a control
/// verb; anything else must parse as a [`RunRequest`].
///
/// # Errors
///
/// A human-readable diagnostic (the caller wraps it in an
/// [`ErrorLine`] of kind [`ErrorKind::BadRequest`]).
pub fn parse_line(line: &str) -> Result<Request, String> {
    let value: Value = serde_json::from_str(line).map_err(|e| format!("bad request: {e}"))?;
    if let Some(verb) = value.get("verb") {
        let name = match verb {
            Value::Str(s) => s.as_str(),
            _ => return Err("bad request: `verb` must be a string".to_string()),
        };
        return match name {
            "stats" => Ok(Request::Verb(Verb::Stats)),
            "metrics" => Ok(Request::Verb(Verb::Metrics)),
            "ping" => Ok(Request::Verb(Verb::Ping)),
            "shutdown" => Ok(Request::Verb(Verb::Shutdown)),
            other => Err(format!(
                "bad request: unknown verb `{other}` (verbs: stats, metrics, ping, shutdown)"
            )),
        };
    }
    match Deserialize::from_value(&value) {
        Ok(request) => Ok(Request::Job(Box::new(request))),
        Err(e) => Err(format!("bad request: {e}")),
    }
}

/// The one `stats` line the `stats` verb answers with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsLine {
    /// Always `"stats"`.
    pub event: String,
    /// Connections open right now (0 in stdio mode).
    pub connections: u64,
    /// Connections accepted since start (0 in stdio mode).
    pub connections_total: u64,
    /// Request lines admitted for execution since start.
    pub requests: u64,
    /// `result` lines served.
    pub results: u64,
    /// `error` lines served (all kinds).
    pub errors: u64,
    /// Jobs refused by admission control.
    pub overloaded: u64,
    /// Jobs this server executed itself (coalescing leaders).
    pub executed: u64,
    /// Jobs answered by joining an in-flight execution.
    pub coalesced: u64,
    /// Jobs executing right now.
    pub in_flight: u64,
    /// Jobs waiting for an admission slot right now.
    pub queue_depth: u64,
    /// Context-cache hits (shared lowering).
    pub context_hits: u64,
    /// Context-cache misses (fresh lowering).
    pub context_misses: u64,
    /// Output-cache hits (experiment served without compute).
    pub output_hits: u64,
    /// Output-cache misses (experiment computed).
    pub output_misses: u64,
    /// Robustness counters (caught panics, deadline cancellations,
    /// rejected lines, reaped connections) — the same nested object
    /// the bench report embeds, so the `stats` verb and
    /// `BENCH_serve.json` can never drift apart.
    pub robustness: RobustnessSnapshot,
    /// Request latency summary (admission wait included).
    pub latency: LatencySummary,
}

/// The one `metrics` line the `metrics` verb answers with: the full
/// unified-registry snapshot (serving stack + artifact store +
/// process-wide counters merged; their site-name prefixes are
/// disjoint), nested under `metrics` so the envelope can grow fields
/// without moving the snapshot schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsLine {
    /// Always `"metrics"`.
    pub event: String,
    /// The merged registry snapshot.
    pub metrics: MetricsSnapshot,
}

/// Renders a response line as its wire bytes (no trailing newline).
pub fn render<T: Serialize>(line: &T) -> String {
    serde_json::to_string(line)
        .unwrap_or_else(|e| unreachable!("response lines always serialize: {e}"))
}

/// Builds the `result` line for a finished job. `id` is the *caller's*
/// correlation id: a coalesced follower echoes its own id, not the
/// leader's.
pub fn result_line(id: Option<String>, result: &JobResult) -> ResultLine {
    ResultLine {
        event: "result",
        id,
        config: hash_hex(result.config_hash),
        context_hit: result.context_hit,
        output_hits: result.output_hits,
        computed: result.computed,
        records: result
            .records
            .iter()
            .map(|r| RecordLine {
                id: r.id.clone(),
                title: r.title.clone(),
                output: r.output.clone(),
            })
            .collect(),
    }
}

/// Builds the progress line for one [`JobEvent`].
pub fn progress_line(event: JobEvent) -> ProgressLine {
    match event {
        JobEvent::Started {
            request_id,
            config_hash,
            context_hit,
            ..
        } => ProgressLine {
            event: "started",
            id: request_id,
            config: Some(hash_hex(config_hash)),
            experiment: None,
            cache_hit: Some(context_hit),
            seconds: None,
        },
        JobEvent::ExperimentDone {
            request_id,
            experiment,
            cache_hit,
            seconds,
        } => ProgressLine {
            event: "experiment",
            id: request_id,
            config: None,
            experiment: Some(experiment),
            cache_hit: Some(cache_hit),
            seconds: Some(seconds),
        },
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn verbs_and_jobs_parse_apart() {
        assert!(matches!(
            parse_line("{\"verb\":\"stats\"}"),
            Ok(Request::Verb(Verb::Stats))
        ));
        assert!(matches!(
            parse_line("{\"verb\":\"shutdown\"}"),
            Ok(Request::Verb(Verb::Shutdown))
        ));
        assert!(matches!(
            parse_line("{\"verb\":\"ping\"}"),
            Ok(Request::Verb(Verb::Ping))
        ));
        let parsed = parse_line("{\"id\":\"j\",\"experiments\":[\"table9\"]}");
        match parsed {
            Ok(Request::Job(job)) => {
                assert_eq!(job.id.as_deref(), Some("j"));
                assert_eq!(job.experiments, vec!["table9".to_string()]);
            }
            _ => panic!("job line must parse as a job"),
        }
    }

    #[test]
    fn bad_lines_are_diagnostic_errors() {
        assert!(parse_line("not json").unwrap_err().contains("bad request"));
        assert!(parse_line("{\"verb\":\"reboot\"}")
            .unwrap_err()
            .contains("unknown verb `reboot`"));
        assert!(parse_line("{\"verb\":1}")
            .unwrap_err()
            .contains("must be a string"));
        assert!(parse_line("{\"experimentz\":[]}")
            .unwrap_err()
            .contains("unknown request field"));
    }

    #[test]
    fn kind_table_matches_the_enum_exactly() {
        // One tag per variant, in declaration order, no extras and no
        // duplicates: the const table IS the enum, as data.
        let tags: Vec<&str> = ErrorKind::VARIANTS.iter().map(|k| k.tag()).collect();
        assert_eq!(tags, kind::ALL);
        let mut dedup = kind::ALL.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kind::ALL.len(), "kind tags are distinct");
        assert_eq!(
            kind_fragment(kind::OVERLOADED),
            "\"kind\":\"overloaded\"".to_string()
        );
    }

    #[test]
    fn error_lines_carry_the_typed_kind() {
        let line = render(&ErrorLine::new(
            ErrorKind::Overloaded,
            Some("j9".to_string()),
            "queue full".to_string(),
        ));
        assert!(line.contains("\"event\":\"error\""));
        assert!(line.contains("\"kind\":\"overloaded\""));
        assert!(line.contains("\"id\":\"j9\""));
    }

    #[test]
    fn stats_line_round_trips() {
        let line = StatsLine {
            event: "stats".to_string(),
            connections: 3,
            connections_total: 10,
            requests: 100,
            results: 95,
            errors: 5,
            overloaded: 2,
            executed: 40,
            coalesced: 55,
            in_flight: 1,
            queue_depth: 0,
            context_hits: 90,
            context_misses: 10,
            output_hits: 300,
            output_misses: 50,
            robustness: RobustnessSnapshot {
                panics_caught: 1,
                deadline_exceeded: 2,
                lines_rejected: 3,
                idle_reaped: 4,
            },
            latency: LatencySummary {
                count: 100,
                mean_us: 1200.0,
                p50_us: 900.0,
                p99_us: 4000.0,
                max_us: 5000.0,
            },
        };
        let text = render(&line);
        let back: StatsLine = serde_json::from_str(&text).expect("parse");
        assert_eq!(back.coalesced, 55);
        assert_eq!(back.latency.count, 100);
        assert_eq!(
            (
                back.robustness.panics_caught,
                back.robustness.deadline_exceeded,
                back.robustness.lines_rejected,
                back.robustness.idle_reaped
            ),
            (1, 2, 3, 4)
        );
        // The CI smoke grep keys on the *top-level* in-flight gauge.
        assert!(text.contains("\"in_flight\":1"));
    }

    #[test]
    fn metrics_verb_parses() {
        assert!(matches!(
            parse_line("{\"verb\":\"metrics\"}"),
            Ok(Request::Verb(Verb::Metrics))
        ));
    }

    #[test]
    fn service_errors_map_to_typed_wire_kinds() {
        let internal = ServiceError::Internal {
            message: "boom".to_string(),
        };
        assert_eq!(
            ErrorKind::of_service_error(&internal).tag(),
            "internal_error"
        );
        assert_eq!(
            ErrorKind::of_service_error(&ServiceError::DeadlineExceeded).tag(),
            "deadline_exceeded"
        );
    }
}
