//! # qods-net — the network serving layer
//!
//! PR 4 made the engines *servable* (`qods-service`: typed requests,
//! content-addressed cache, shared-pool scheduler); this crate makes
//! them *reachable*: the NDJSON wire protocol ([`protocol`]) served
//! over two transports — the original stdio daemon and a multi-client
//! TCP server (`qods-serve --listen ADDR`, thread-per-connection on
//! `std::net`; the offline build has no async runtime and needs
//! none).
//!
//! Both transports drive one [`server::ServeCore`], which layers the
//! serving concerns the scheduler itself stays free of:
//!
//! * **in-flight coalescing** — concurrent submissions of the same
//!   job key ([`qods_service::Scheduler::job_key`]: canonical config
//!   hash + resolved experiment selection) block on a single
//!   execution and each answer with identical result bytes;
//! * **admission control** ([`admission::Gate`]) — bounded execution
//!   slots plus a bounded wait queue; a burst past both answers a
//!   typed `overloaded` error line instead of queueing without bound,
//!   and per-connection request budgets cap any single client;
//! * **a `stats` verb** — p50/p99/max request latency from an
//!   allocation-free histogram ([`qods_service::LatencyHistogram`]),
//!   cache hit rates, coalesce counts, queue depth, connection
//!   gauges; verbs bypass admission so `stats` answers even while
//!   jobs are being shed;
//! * **graceful shutdown** — the `shutdown` verb (or stdin EOF, or a
//!   read error) stops intake, drains admitted jobs, and exits 0;
//!   both transports share the one drain path.
//!
//! Responses stay byte-reproducible for a fixed request sequence —
//! the transport byte-identity tests hold stdio bytes, TCP bytes, and
//! direct `Registry` runs equal. See `DESIGN.md` §7 for the wire
//! protocol and serving semantics.
//!
//! **Robustness (PR 7):** the serving path is hardened against
//! misbehaving peers and its own bugs — capped NDJSON line reads
//! (oversize lines answer `bad_request`, never unbounded buffering),
//! socket read/write timeouts with an idle-connection reaper,
//! per-request deadlines (`deadline_ms`) with a server-wide
//! `--default-deadline`, panic isolation in the scheduler (a crashing
//! job is a typed `internal_error` line, not a dead daemon), and a
//! retrying [`client::Client`] with seeded exponential backoff. The
//! whole path is chaos-tested under `qods-fault` injection.

// Typed errors over in-band panics on the serving path: new code must
// not add `unwrap`/`expect` here (CI runs clippy with `-D warnings`).
// Test modules opt back in locally.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod admission;
pub mod client;
pub mod protocol;
pub mod server;

pub use admission::{Gate, Permit, Refusal};
pub use client::{Client, RetryPolicy};
pub use protocol::{ErrorKind, Request, StatsLine, Verb};
pub use server::{
    ConnState, LineOutcome, LineSink, NetServer, ServeCore, ServeOptions,
    DEFAULT_IDLE_TIMEOUT_SECS, DEFAULT_MAX_LINE_LEN,
};
