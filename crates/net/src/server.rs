//! The transport-independent serving core and the two transports
//! (stdio and multi-client TCP) that drive it.
//!
//! [`ServeCore`] owns the scheduler, the admission [`Gate`], the
//! serving counters, and the latency histogram; its
//! [`ServeCore::handle_line`] is the *whole* per-line behavior —
//! parse, verb dispatch, admission, coalesced execution, response
//! rendering. The transports only move bytes: [`serve_stdio`] reads
//! stdin, [`NetServer`] accepts TCP connections and runs one reader
//! thread per connection. Because both feed the same `handle_line`,
//! the served bytes for a given request sequence are identical across
//! transports (tested in `tests/serve_ndjson.rs`), and both share one
//! graceful-drain path: stop taking input, let admitted jobs finish
//! ([`Gate::wait_idle`]), then return — even when the input side
//! failed mid-stream.

use crate::admission::{Gate, Refusal};
use crate::protocol::{
    parse_line, progress_line, render, result_line, ErrorKind, ErrorLine, MetricsLine, Request,
    StatsLine, Verb,
};
use qods_obs::{sites, Counter, Gauge, MetricsSnapshot, Registry, RobustnessSnapshot};
use qods_pool::plock;
use qods_service::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default cap on one NDJSON input line (bytes). Far above any real
/// request, far below what an adversarial or broken client could
/// otherwise make one connection thread buffer.
pub const DEFAULT_MAX_LINE_LEN: usize = 1 << 20;

/// Default idle-connection reap time (seconds since the last
/// *completed* line — a trickling slow-loris peer never completes
/// one, so the same clock covers both silence and drip-feeding).
pub const DEFAULT_IDLE_TIMEOUT_SECS: u64 = 300;

/// The read-timeout tick idle connections are polled at, and the cap
/// on how long a stalled peer can block one response write.
const SOCKET_TICK: Duration = Duration::from_secs(1);
const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Serving policy for one server instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Stream `started`/`experiment` progress lines per job.
    pub progress: bool,
    /// Jobs admitted to execute concurrently (admission slots).
    pub max_inflight: usize,
    /// Jobs allowed to wait for a slot; one more is `overloaded`.
    pub max_queue: usize,
    /// Job lines one connection may submit (0 = unlimited); the line
    /// after the budget answers a `connection_limit` error.
    pub max_requests_per_conn: u64,
    /// Concurrent TCP connections; further accepts are refused with
    /// one `overloaded` error line.
    pub max_connections: usize,
    /// Longest accepted input line in bytes; a longer line answers
    /// one `bad_request` error and is discarded without buffering.
    pub max_line_len: usize,
    /// Seconds a TCP connection may go without completing a line
    /// before it is reaped with an `idle_timeout` error (0 disables
    /// the reaper; stdio is never reaped).
    pub idle_timeout_secs: u64,
    /// Deadline budget (ms) applied to jobs that carry no
    /// `deadline_ms` of their own (0 = no default).
    pub default_deadline_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            progress: false,
            max_inflight: 32,
            max_queue: 64,
            max_requests_per_conn: 0,
            max_connections: 64,
            max_line_len: DEFAULT_MAX_LINE_LEN,
            idle_timeout_secs: DEFAULT_IDLE_TIMEOUT_SECS,
            default_deadline_ms: 0,
        }
    }
}

/// What one attempt to read the next line produced.
#[derive(Debug)]
enum ReadLine {
    /// A complete line (terminator stripped).
    Line(String),
    /// A line exceeded the cap; it was consumed and discarded.
    TooLong {
        /// Bytes thrown away (diagnostic only).
        discarded: usize,
    },
    /// Clean end of input.
    Eof,
    /// The read timed out (socket tick); partial input is retained
    /// and the next call continues it.
    Idle,
    /// The transport failed.
    Failed,
}

/// A line reader with a hard per-line byte cap. Unlike
/// `BufRead::lines`, an oversized line costs one bounded buffer and a
/// typed error — not an allocation the size of whatever the peer
/// cares to send before its first newline — and a read timeout
/// surfaces as [`ReadLine::Idle`] instead of losing buffered input,
/// which is what lets the TCP loop poll its idle reaper.
struct CappedLineReader<R> {
    inner: R,
    max_len: usize,
    buf: Vec<u8>,
    /// Inside an over-cap line: consume to the newline, count, and
    /// report instead of buffering.
    discarding: bool,
    discarded: usize,
}

impl<R: BufRead> CappedLineReader<R> {
    fn new(inner: R, max_len: usize) -> Self {
        CappedLineReader {
            inner,
            max_len: max_len.max(1),
            buf: Vec::new(),
            discarding: false,
            discarded: 0,
        }
    }

    fn next_line(&mut self) -> ReadLine {
        loop {
            let chunk = match self.inner.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return ReadLine::Idle
                }
                Err(_) => return ReadLine::Failed,
            };
            if chunk.is_empty() {
                // EOF. An unterminated trailing line still serves
                // (matching `BufRead::lines`); a truncated over-cap
                // line still reports.
                if self.discarding {
                    self.discarding = false;
                    return ReadLine::TooLong {
                        discarded: std::mem::take(&mut self.discarded),
                    };
                }
                if self.buf.is_empty() {
                    return ReadLine::Eof;
                }
                return ReadLine::Line(self.take_line());
            }
            let newline = chunk.iter().position(|&b| b == b'\n');
            let upto = newline.map_or(chunk.len(), |i| i + 1);
            if self.discarding {
                self.discarded += upto;
                self.inner.consume(upto);
                if newline.is_some() {
                    self.discarding = false;
                    return ReadLine::TooLong {
                        discarded: std::mem::take(&mut self.discarded),
                    };
                }
                continue;
            }
            self.buf.extend_from_slice(&chunk[..upto]);
            self.inner.consume(upto);
            if self.buf.len() > self.max_len {
                // Too long: drop what we buffered and drain the rest
                // of the line (possibly across many reads).
                self.discarded = self.buf.len();
                self.buf.clear();
                if newline.is_some() {
                    return ReadLine::TooLong {
                        discarded: std::mem::take(&mut self.discarded),
                    };
                }
                self.discarding = true;
                continue;
            }
            if newline.is_some() {
                return ReadLine::Line(self.take_line());
            }
        }
    }

    fn take_line(&mut self) -> String {
        let mut bytes = std::mem::take(&mut self.buf);
        while bytes.last() == Some(&b'\n') || bytes.last() == Some(&b'\r') {
            bytes.pop();
        }
        String::from_utf8_lossy(&bytes).into_owned()
    }
}

/// Per-connection (or per-stdio-session) state `handle_line` threads
/// through: the job-line budget.
#[derive(Debug, Default)]
pub struct ConnState {
    jobs_submitted: u64,
}

/// What the transport should do after one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// A `shutdown` verb was served: stop taking input and drain.
    Shutdown,
}

/// A whole-line byte sink. Implementations must write the line plus a
/// newline atomically with respect to other `emit` calls (progress
/// lines arrive from worker threads) and swallow transport errors —
/// a dead peer must never panic the server or abort the in-flight
/// job other callers may be coalesced onto.
pub trait LineSink: Sync {
    /// Writes one response line (no trailing newline in `line`).
    fn emit(&self, line: &str);
}

/// The transport-independent server: scheduler + admission gate +
/// counters + latency accounting behind one `handle_line`.
pub struct ServeCore {
    scheduler: Scheduler,
    gate: Gate,
    options: ServeOptions,
    /// The serving stack's registry — the same instance the context
    /// pool created and the scheduler registered into, so `stats`,
    /// `metrics`, and the bench report all read one source of truth.
    metrics: Arc<Registry>,
    latency: Arc<LatencyHistogram>,
    draining: AtomicBool,
    requests: Arc<Counter>,
    results: Arc<Counter>,
    errors: Arc<Counter>,
    overloaded: Arc<Counter>,
    connections: Arc<Gauge>,
    connections_total: Arc<Counter>,
    lines_rejected: Arc<Counter>,
    idle_reaped: Arc<Counter>,
}

impl ServeCore {
    /// A serving core over `scheduler` with the given policy.
    pub fn new(scheduler: Scheduler, options: ServeOptions) -> Self {
        let gate = Gate::new(options.max_inflight, options.max_queue);
        scheduler.set_default_deadline_ms(options.default_deadline_ms);
        let metrics = Arc::clone(scheduler.pool().metrics());
        ServeCore {
            gate,
            options,
            latency: metrics.histogram(sites::NET_LATENCY),
            draining: AtomicBool::new(false),
            requests: metrics.counter(sites::NET_REQUESTS),
            results: metrics.counter(sites::NET_RESULTS),
            errors: metrics.counter(sites::NET_ERRORS),
            overloaded: metrics.counter(sites::NET_OVERLOADED),
            connections: metrics.gauge(sites::NET_CONNECTIONS),
            connections_total: metrics.counter(sites::NET_CONNECTIONS_TOTAL),
            lines_rejected: metrics.counter(sites::NET_LINES_REJECTED),
            idle_reaped: metrics.counter(sites::NET_IDLE_REAPED),
            metrics,
            scheduler,
        }
    }

    /// The scheduler this core serves.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The serving policy.
    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// Serves one input line: empty lines are ignored, verbs answer
    /// their typed line, job lines run (behind admission, coalesced)
    /// and answer exactly one `result` or `error` line.
    pub fn handle_line(
        &self,
        line: &str,
        conn: &mut ConnState,
        sink: &dyn LineSink,
    ) -> LineOutcome {
        if line.trim().is_empty() {
            return LineOutcome::Continue;
        }
        let request = match parse_line(line) {
            Ok(r) => r,
            Err(diag) => {
                self.emit_error(sink, ErrorKind::BadRequest, None, diag);
                return LineOutcome::Continue;
            }
        };
        match request {
            Request::Verb(Verb::Ping) => {
                sink.emit("{\"event\":\"pong\"}");
                LineOutcome::Continue
            }
            Request::Verb(Verb::Stats) => {
                sink.emit(&render(&self.stats_line()));
                LineOutcome::Continue
            }
            Request::Verb(Verb::Metrics) => {
                sink.emit(&render(&MetricsLine {
                    event: "metrics".to_string(),
                    metrics: self.metrics_snapshot(),
                }));
                LineOutcome::Continue
            }
            Request::Verb(Verb::Shutdown) => {
                sink.emit("{\"event\":\"shutting_down\"}");
                self.begin_drain();
                LineOutcome::Shutdown
            }
            Request::Job(job) => {
                self.serve_job(&job, conn, sink);
                LineOutcome::Continue
            }
        }
    }

    /// Runs one job line end to end: per-connection budget, admission,
    /// coalesced execution, latency accounting, one response line.
    fn serve_job(&self, job: &RunRequest, conn: &mut ConnState, sink: &dyn LineSink) {
        let mut request_span = qods_obs::span!(sites::NET_REQUEST);
        if let Some(id) = &job.id {
            request_span.note_detail(id);
        }
        let budget = self.options.max_requests_per_conn;
        if budget > 0 && conn.jobs_submitted >= budget {
            self.emit_error(
                sink,
                ErrorKind::ConnectionLimit,
                job.id.clone(),
                format!("connection exceeded its request budget of {budget}"),
            );
            return;
        }
        conn.jobs_submitted += 1;

        // qods-lint: allow(D1) -- queue-latency telemetry for the stats
        // verb; excluded from result lines
        let t0 = Instant::now();
        let admitted = {
            let _span = qods_obs::span!(sites::NET_ADMISSION);
            self.gate.admit()
        };
        let permit = match admitted {
            Ok(p) => p,
            Err(refusal) => {
                let kind = match refusal {
                    Refusal::QueueFull => {
                        self.overloaded.inc();
                        ErrorKind::Overloaded
                    }
                    Refusal::Draining => ErrorKind::ShuttingDown,
                };
                self.emit_error(sink, kind, job.id.clone(), refusal.to_string());
                return;
            }
        };
        self.requests.inc();

        let progress = self.options.progress;
        let mut emit_event = |event: JobEvent| {
            if progress {
                sink.emit(&render(&progress_line(event)));
            }
        };
        let outcome = self
            .scheduler
            .run_coalesced_with_events(job, &mut emit_event);
        drop(permit);
        self.latency.record(t0.elapsed());

        match outcome {
            Ok((result, _coalesced)) => {
                request_span.note_config_hash(result.config_hash);
                // Echo the *caller's* id: a coalesced response carries
                // the leader's records but this request's identity.
                let line = render(&result_line(job.id.clone(), &result));
                {
                    let _span = qods_obs::span!(sites::NET_WRITE);
                    sink.emit(&line);
                }
                self.results.inc();
            }
            // A panicked or deadline-cancelled job answers with its
            // own typed kind (`internal_error` / `deadline_exceeded`)
            // so clients can tell a crashed experiment from a refused
            // request.
            Err(e) => self.emit_error(
                sink,
                ErrorKind::of_service_error(&e),
                job.id.clone(),
                e.to_string(),
            ),
        }
    }

    /// Answers an over-cap input line with one typed `bad_request`
    /// error and counts it.
    fn reject_line(&self, sink: &dyn LineSink, discarded: usize) {
        self.lines_rejected.inc();
        self.emit_error(
            sink,
            ErrorKind::BadRequest,
            None,
            format!(
                "bad request: line exceeded the {}-byte cap ({discarded} bytes discarded)",
                self.options.max_line_len
            ),
        );
    }

    fn emit_error(&self, sink: &dyn LineSink, kind: ErrorKind, id: Option<String>, diag: String) {
        sink.emit(&render(&ErrorLine::new(kind, id, diag)));
        self.errors.inc();
    }

    /// Stops admitting jobs (they answer `shutting_down` errors);
    /// already-admitted jobs keep running.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.gate.drain();
    }

    /// True once [`ServeCore::begin_drain`] has run.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Blocks until every admitted job has finished.
    pub fn wait_idle(&self) {
        self.gate.wait_idle();
    }

    fn connection_opened(&self) {
        self.connections.rise();
        self.connections_total.inc();
    }

    fn connection_closed(&self) {
        self.connections.fall();
    }

    /// Connections open right now. The limit check this feeds is
    /// advisory (relaxed gauge reads settle promptly; a race admits
    /// at most one extra connection for one accept).
    pub fn connection_count(&self) -> u64 {
        self.connections.get().max(0) as u64
    }

    /// The `stats` verb's answer, assembled from the scheduler, the
    /// cache, the gate, and this core's counters. Allocation cost is
    /// one `StatsLine`; recording latency on the hot path is
    /// allocation-free ([`LatencyHistogram`]).
    pub fn stats_line(&self) -> StatsLine {
        let sched = self.scheduler.stats();
        let cache = self.scheduler.pool().stats();
        StatsLine {
            event: "stats".to_string(),
            connections: self.connection_count(),
            connections_total: self.connections_total.get(),
            requests: self.requests.get(),
            results: self.results.get(),
            errors: self.errors.get(),
            overloaded: self.overloaded.get(),
            executed: sched.jobs_led,
            coalesced: sched.jobs_coalesced,
            in_flight: self.gate.active() as u64,
            queue_depth: self.gate.waiting() as u64,
            context_hits: cache.context_hits,
            context_misses: cache.context_misses,
            output_hits: cache.output_hits,
            output_misses: cache.output_misses,
            robustness: RobustnessSnapshot::from_registry(&self.metrics),
            latency: self.latency.summary(),
        }
    }

    /// The `metrics` verb's answer: the serving stack's registry
    /// merged with the artifact store's and the process-global one
    /// (their site-name prefixes are disjoint, so a map-extend merge
    /// is lossless). The mutex-guarded levels — gate permits, queue
    /// depth, in-flight jobs — are published into gauges here, at
    /// snapshot time: the mutexed state stays the source of truth and
    /// the hot path pays nothing for them.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics
            .gauge(sites::GATE_ACTIVE)
            .set(self.gate.active() as i64);
        self.metrics
            .gauge(sites::GATE_WAITING)
            .set(self.gate.waiting() as i64);
        self.metrics
            .gauge(sites::SVC_IN_FLIGHT)
            .set(self.scheduler.stats().in_flight as i64);
        let mut snap = self.metrics.snapshot();
        for other in [
            self.scheduler.pool().store().metrics().snapshot(),
            Registry::global().snapshot(),
        ] {
            snap.counters.extend(other.counters);
            snap.gauges.extend(other.gauges);
            snap.latency.extend(other.latency);
        }
        snap
    }
}

/// The stdio sink: one locked write per line keeps lines whole even
/// with progress events arriving from worker threads.
struct StdoutSink;

impl LineSink for StdoutSink {
    fn emit(&self, line: &str) {
        let mut out = std::io::stdout().lock();
        // A closed stdout must not panic the drain path; the read
        // side ends the session.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Serves the NDJSON protocol on stdin/stdout until EOF, a `shutdown`
/// verb, or a read error — all three paths drain admitted jobs before
/// returning (the read-error case used to abandon them).
///
/// # Errors
///
/// The read-error diagnostic, after draining.
pub fn serve_stdio(core: &ServeCore) -> Result<(), String> {
    let sink = StdoutSink;
    let mut conn = ConnState::default();
    let mut read_error = None;
    let stdin = std::io::stdin();
    let mut reader = CappedLineReader::new(stdin.lock(), core.options().max_line_len);
    loop {
        match reader.next_line() {
            ReadLine::Line(line) => {
                if let LineOutcome::Shutdown = core.handle_line(&line, &mut conn, &sink) {
                    break;
                }
            }
            ReadLine::TooLong { discarded } => core.reject_line(&sink, discarded),
            ReadLine::Eof => break,
            // Stdin has no read timeout; treat a spurious tick as a
            // retry.
            ReadLine::Idle => continue,
            ReadLine::Failed => {
                read_error = Some("stdin read failed".to_string());
                break;
            }
        }
    }
    // One drain path for EOF, shutdown verb, and read error alike.
    core.begin_drain();
    core.wait_idle();
    match read_error {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// A TCP connection's sink: the write half behind a mutex, errors
/// swallowed (a dead peer ends the session via the read half).
struct StreamSink {
    writer: Mutex<TcpStream>,
}

impl LineSink for StreamSink {
    fn emit(&self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        // qods-lint: allow(L1) -- by design: the writer mutex held across the write IS the per-connection frame serializer
        let mut w = plock(&self.writer);
        let _ = w.write_all(&buf);
        let _ = w.flush();
    }
}

/// The multi-client TCP transport: thread-per-connection over one
/// shared [`ServeCore`].
pub struct NetServer {
    core: Arc<ServeCore>,
    listener: TcpListener,
    local: SocketAddr,
}

impl NetServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// The bind error.
    pub fn bind(core: Arc<ServeCore>, addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(NetServer {
            core,
            listener,
            local,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Accepts and serves connections until a `shutdown` verb arrives
    /// on any of them, then drains: stop accepting, half-close every
    /// connection's read side (their threads finish the job they are
    /// on, answer it, and exit on EOF), wait for all admitted jobs,
    /// join every connection thread.
    ///
    /// # Errors
    ///
    /// Fatal listener errors only; per-connection failures (including
    /// mid-request disconnects) are contained to their thread.
    pub fn serve(self) -> std::io::Result<()> {
        let stop = Arc::new(AtomicBool::new(false));
        // Read-half clones of every live connection, for the drain's
        // half-close.
        let readers: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();

        for incoming in self.listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                Err(_) => continue,
            };
            // The shutdown self-connect lands here: drop it and stop.
            if stop.load(Ordering::SeqCst) {
                break;
            }
            if self.core.connection_count() >= self.core.options().max_connections as u64 {
                let sink = StreamSink {
                    writer: Mutex::new(stream),
                };
                sink.emit(&render(&ErrorLine::new(
                    ErrorKind::Overloaded,
                    None,
                    format!(
                        "server overloaded: connection limit {} reached",
                        self.core.options().max_connections
                    ),
                )));
                continue; // dropping the stream closes it
            }
            if let Ok(read_half) = stream.try_clone() {
                plock(&readers).push(read_half);
            }
            let core = self.core.clone();
            let stop = stop.clone();
            let local = self.local;
            threads.push(std::thread::spawn(move || {
                serve_connection(&core, stream, &stop, local);
            }));
        }

        // Drain: no new jobs, half-close every reader so connection
        // threads fall out of their read loop after the line they are
        // serving, then wait for the work and the threads.
        self.core.begin_drain();
        for reader in plock(&readers).iter() {
            let _ = reader.shutdown(Shutdown::Read);
        }
        for thread in threads {
            let _ = thread.join();
        }
        self.core.wait_idle();
        Ok(())
    }
}

/// One connection's read loop. A `shutdown` verb flips the stop flag
/// and pokes the accept loop awake with a self-connect.
///
/// Socket robustness: reads tick every [`SOCKET_TICK`] so the idle
/// reaper can run (a connection that goes `idle_timeout_secs` without
/// *completing* a line — silent or drip-feeding — answers one
/// `idle_timeout` error and is closed), writes time out after
/// [`WRITE_TIMEOUT`] so a stalled peer cannot pin the thread, and
/// over-cap lines answer `bad_request` without unbounded buffering.
/// The `net.conn` fault site injects disconnects and delays here, one
/// op per served line.
fn serve_connection(core: &ServeCore, stream: TcpStream, stop: &AtomicBool, local: SocketAddr) {
    // One span covering the whole connection lifetime; every
    // per-line span below nests under it on this thread's lane.
    let _conn_span = qods_obs::span!(sites::NET_ACCEPT);
    core.connection_opened();
    let idle_timeout = match core.options().idle_timeout_secs {
        0 => None,
        secs => Some(Duration::from_secs(secs)),
    };
    if idle_timeout.is_some() {
        let _ = stream.set_read_timeout(Some(SOCKET_TICK));
    }
    let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => {
            core.connection_closed();
            return;
        }
    };
    let half_close = stream.try_clone();
    let sink = StreamSink {
        writer: Mutex::new(stream),
    };
    let mut reader = CappedLineReader::new(reader, core.options().max_line_len);
    let mut conn = ConnState::default();
    // qods-lint: allow(D1) -- idle-timeout bookkeeping on the transport;
    // results are produced upstream of this clock
    let mut last_line_done = Instant::now();
    loop {
        // Speculative: a read that ends in an idle tick cancels its
        // span (recording every 1s poll would drown the trace).
        let read_span = qods_obs::span!(sites::NET_READ);
        let next = reader.next_line();
        if matches!(next, ReadLine::Idle) {
            read_span.cancel();
        } else {
            drop(read_span);
        }
        match next {
            ReadLine::Line(line) => {
                if let Some(qods_fault::FaultAction::Disconnect) =
                    qods_fault::check_sleeping(qods_fault::site::NET_CONN)
                {
                    // Injected mid-request connection drop: the peer
                    // sees a reset, the server must shrug.
                    if let Ok(s) = &half_close {
                        let _ = s.shutdown(Shutdown::Both);
                    }
                    break;
                }
                if let LineOutcome::Shutdown = core.handle_line(&line, &mut conn, &sink) {
                    stop.store(true, Ordering::SeqCst);
                    // Unblock the accept loop so it can run the drain.
                    let _ = TcpStream::connect(local);
                    break;
                }
                // qods-lint: allow(D1) -- idle-timeout bookkeeping
                last_line_done = Instant::now();
            }
            ReadLine::TooLong { discarded } => {
                // qods-lint: allow(D1) -- idle-timeout bookkeeping
                last_line_done = Instant::now();
                core.reject_line(&sink, discarded);
            }
            ReadLine::Idle => {
                if let Some(timeout) = idle_timeout {
                    if last_line_done.elapsed() >= timeout {
                        core.idle_reaped.inc();
                        core.emit_error(
                            &sink,
                            ErrorKind::IdleTimeout,
                            None,
                            format!(
                                "connection idle for {}s without completing a line",
                                timeout.as_secs()
                            ),
                        );
                        if let Ok(s) = &half_close {
                            let _ = s.shutdown(Shutdown::Both);
                        }
                        break;
                    }
                }
            }
            ReadLine::Eof | ReadLine::Failed => break,
        }
    }
    core.connection_closed();
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::protocol::{kind, kind_fragment};

    /// Runs `input` through a [`CappedLineReader`] with `cap` and
    /// collects every outcome until EOF.
    fn read_all(input: &[u8], cap: usize) -> Vec<ReadLine> {
        let mut reader = CappedLineReader::new(std::io::Cursor::new(input.to_vec()), cap);
        let mut out = Vec::new();
        loop {
            let next = reader.next_line();
            let eof = matches!(next, ReadLine::Eof);
            out.push(next);
            if eof {
                return out;
            }
        }
    }

    #[test]
    fn capped_reader_passes_lines_under_the_cap() {
        let out = read_all(b"alpha\nbeta\r\n", 64);
        assert!(matches!(&out[0], ReadLine::Line(l) if l == "alpha"));
        assert!(
            matches!(&out[1], ReadLine::Line(l) if l == "beta"),
            "CR stripped"
        );
        assert!(matches!(out[2], ReadLine::Eof));
    }

    #[test]
    fn capped_reader_rejects_an_oversize_line_and_recovers() {
        let input = format!("{}\nshort\n", "x".repeat(100));
        let out = read_all(input.as_bytes(), 16);
        assert!(
            matches!(out[0], ReadLine::TooLong { discarded } if discarded >= 100),
            "{:?}",
            out[0]
        );
        assert!(
            matches!(&out[1], ReadLine::Line(l) if l == "short"),
            "the stream recovers after the rejected line"
        );
    }

    #[test]
    fn capped_reader_discards_across_buffer_refills() {
        // An oversize line much larger than BufReader's chunking still
        // counts every discarded byte and consumes through its
        // newline.
        let input = format!("{}\nok\n", "y".repeat(500_000));
        let out = read_all(input.as_bytes(), 1024);
        assert!(matches!(out[0], ReadLine::TooLong { discarded } if discarded >= 500_000));
        assert!(matches!(&out[1], ReadLine::Line(l) if l == "ok"));
    }

    #[test]
    fn capped_reader_serves_an_unterminated_final_line() {
        let out = read_all(b"no newline at end", 64);
        assert!(matches!(&out[0], ReadLine::Line(l) if l == "no newline at end"));
        assert!(matches!(out[1], ReadLine::Eof));
    }

    #[test]
    fn capped_reader_rejects_an_unterminated_oversize_tail() {
        let input = "z".repeat(50);
        let out = read_all(input.as_bytes(), 16);
        assert!(matches!(out[0], ReadLine::TooLong { discarded } if discarded == 50));
        assert!(matches!(out[1], ReadLine::Eof));
    }

    struct VecSink(Mutex<Vec<String>>);

    impl VecSink {
        fn new() -> Self {
            VecSink(Mutex::new(Vec::new()))
        }
        fn lines(&self) -> Vec<String> {
            self.0.lock().expect("sink").clone()
        }
    }

    impl LineSink for VecSink {
        fn emit(&self, line: &str) {
            self.0.lock().expect("sink").push(line.to_string());
        }
    }

    fn quick_core(options: ServeOptions) -> ServeCore {
        let scheduler = Scheduler::with_options(StudyConfig::smoke(), 1, true);
        ServeCore::new(scheduler, options)
    }

    #[test]
    fn verbs_answer_without_touching_admission() {
        // A gate nobody can pass: verbs must still answer.
        let core = quick_core(ServeOptions {
            max_inflight: 1,
            max_queue: 0,
            ..ServeOptions::default()
        });
        let sink = VecSink::new();
        let mut conn = ConnState::default();
        assert_eq!(
            core.handle_line("{\"verb\":\"ping\"}", &mut conn, &sink),
            LineOutcome::Continue
        );
        assert_eq!(
            core.handle_line("{\"verb\":\"stats\"}", &mut conn, &sink),
            LineOutcome::Continue
        );
        let lines = sink.lines();
        assert_eq!(lines[0], "{\"event\":\"pong\"}");
        assert!(lines[1].contains("\"event\":\"stats\""));
        assert!(lines[1].contains("\"queue_depth\":0"));
    }

    #[test]
    fn job_lines_after_drain_answer_shutting_down() {
        let core = quick_core(ServeOptions::default());
        core.begin_drain();
        let sink = VecSink::new();
        let mut conn = ConnState::default();
        core.handle_line(
            "{\"id\":\"late\",\"experiments\":[\"fig6\"]}",
            &mut conn,
            &sink,
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains(&kind_fragment(kind::SHUTTING_DOWN)),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"id\":\"late\""));
    }

    #[test]
    fn per_connection_budget_is_a_typed_error() {
        let core = quick_core(ServeOptions {
            max_requests_per_conn: 1,
            ..ServeOptions::default()
        });
        let sink = VecSink::new();
        let mut conn = ConnState::default();
        let line = "{\"id\":\"a\",\"experiments\":[\"table9\"],\"overrides\":{\"n_bits\":8}}";
        core.handle_line(line, &mut conn, &sink);
        core.handle_line(line, &mut conn, &sink);
        // Verbs are free: the budget only meters job lines.
        core.handle_line("{\"verb\":\"ping\"}", &mut conn, &sink);
        let lines = sink.lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"result\""));
        assert!(
            lines[1].contains(&kind_fragment(kind::CONNECTION_LIMIT)),
            "{}",
            lines[1]
        );
        assert_eq!(lines[2], "{\"event\":\"pong\"}");
        // A fresh connection has a fresh budget.
        let mut conn2 = ConnState::default();
        core.handle_line(line, &mut conn2, &sink);
        assert!(sink.lines()[3].contains("\"event\":\"result\""));
    }

    #[test]
    fn stats_line_counts_jobs_and_latency() {
        let core = quick_core(ServeOptions::default());
        let sink = VecSink::new();
        let mut conn = ConnState::default();
        let line = "{\"experiments\":[\"table9\"],\"overrides\":{\"n_bits\":8}}";
        core.handle_line(line, &mut conn, &sink);
        core.handle_line(line, &mut conn, &sink);
        core.handle_line("{\"experiments\":[\"bogus\"]}", &mut conn, &sink);
        let stats = core.stats_line();
        assert_eq!(stats.requests, 3, "rejections pass admission too");
        assert_eq!(stats.results, 2);
        assert_eq!(stats.errors, 1);
        // The rejection failed key resolution before leading a run.
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.coalesced, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.latency.count, 3);
        assert!(stats.latency.p50_us > 0.0);
        // The repeat was served from cache.
        assert_eq!(stats.output_hits, 1);
    }
}
