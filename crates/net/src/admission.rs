//! Admission control: a bounded gate in front of the scheduler.
//!
//! Every job line must take a [`Permit`] before it may execute. At
//! most `max_inflight` permits are out at once; up to `max_queue`
//! further callers wait (FIFO by condvar wakeup); anyone beyond that
//! is refused immediately with a typed `overloaded` error — the
//! load-shedding contract: a burst past capacity answers *something*
//! on every line fast rather than queueing without bound.
//!
//! Coalescing happens *behind* the gate: an admitted duplicate joins
//! the in-flight leader instead of executing, but it still holds its
//! permit while waiting (the slot accounts for the caller, not the
//! work).

use qods_pool::plock;
use std::sync::{Condvar, Mutex, PoisonError};

/// Why admission refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// Both the execution slots and the wait queue are full.
    QueueFull,
    /// The gate is draining for shutdown and admits nothing new.
    Draining,
}

impl std::fmt::Display for Refusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Refusal::QueueFull => write!(f, "server overloaded: admission queue full"),
            Refusal::Draining => write!(f, "server is shutting down"),
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    /// Permits currently out.
    active: usize,
    /// Callers blocked waiting for a permit.
    waiting: usize,
    /// Draining: admit nothing new, wake every waiter.
    draining: bool,
}

/// The bounded admission gate. All methods are callable from any
/// thread; `&self` only.
///
/// Gate locks are poison-tolerant (`PoisonError::into_inner`): no
/// critical section here calls user code, so a poisoned mutex can
/// only mean a panic elsewhere unwound past a guard — and the serving
/// path must keep admitting after a caught job panic, not deadlock.
#[derive(Debug)]
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    max_queue: usize,
}

/// An admission slot. Dropping it releases the slot and wakes one
/// waiter — hold it exactly as long as the job runs.
#[derive(Debug)]
pub struct Permit<'a> {
    gate: &'a Gate,
}

impl Gate {
    /// A gate with `max_inflight` execution slots and a wait queue of
    /// `max_queue` (both clamped to at least 1 slot / 0 waiters).
    pub fn new(max_inflight: usize, max_queue: usize) -> Self {
        Gate {
            state: Mutex::new(GateState::default()),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_queue,
        }
    }

    /// Takes an admission slot, blocking in the wait queue if the
    /// slots are full and the queue is not.
    ///
    /// # Errors
    ///
    /// [`Refusal::QueueFull`] when slots *and* queue are full;
    /// [`Refusal::Draining`] once [`Gate::drain`] has been called
    /// (including for callers already queued when the drain started).
    pub fn admit(&self) -> Result<Permit<'_>, Refusal> {
        let mut state = plock(&self.state);
        if state.draining {
            return Err(Refusal::Draining);
        }
        if state.active >= self.max_inflight {
            if state.waiting >= self.max_queue {
                return Err(Refusal::QueueFull);
            }
            state.waiting += 1;
            while state.active >= self.max_inflight && !state.draining {
                state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
            state.waiting -= 1;
            if state.draining {
                return Err(Refusal::Draining);
            }
        }
        state.active += 1;
        Ok(Permit { gate: self })
    }

    /// Stops admitting: every future (and currently queued) `admit`
    /// call returns [`Refusal::Draining`]. Already-issued permits are
    /// unaffected — pair with [`Gate::wait_idle`] to drain them.
    pub fn drain(&self) {
        let mut state = plock(&self.state);
        state.draining = true;
        self.cv.notify_all();
    }

    /// Blocks until every issued permit has been returned.
    pub fn wait_idle(&self) {
        let mut state = plock(&self.state);
        while state.active > 0 {
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Permits currently out (jobs admitted and not yet finished).
    pub fn active(&self) -> usize {
        plock(&self.state).active
    }

    /// Callers blocked in the wait queue right now.
    pub fn waiting(&self) -> usize {
        plock(&self.state).waiting
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut state = plock(&self.gate.state);
        state.active -= 1;
        // Wake both queued admitters and `wait_idle`.
        self.gate.cv.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn permits_bound_concurrency_and_queue_overflow_is_refused() {
        let gate = Gate::new(1, 0);
        let p = gate.admit().expect("first slot");
        assert_eq!(gate.active(), 1);
        assert_eq!(gate.admit().unwrap_err(), Refusal::QueueFull);
        drop(p);
        assert_eq!(gate.active(), 0);
        gate.admit().expect("slot free again");
    }

    #[test]
    fn queued_callers_run_after_the_slot_frees() {
        let gate = Arc::new(Gate::new(1, 8));
        let peak = Arc::new(AtomicUsize::new(0));
        let now = Arc::new(AtomicUsize::new(0));
        let start = Arc::new(Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (gate, peak, now, start) =
                    (gate.clone(), peak.clone(), now.clone(), start.clone());
                thread::spawn(move || {
                    start.wait();
                    let _p = gate.admit().expect("queue is deep enough");
                    let cur = now.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(cur, Ordering::SeqCst);
                    thread::sleep(Duration::from_millis(2));
                    now.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "cap of 1 must serialize");
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.waiting(), 0);
    }

    #[test]
    fn drain_refuses_new_work_and_wakes_the_queue() {
        let gate = Arc::new(Gate::new(1, 4));
        let p = gate.admit().expect("slot");
        let queued = {
            let gate = gate.clone();
            thread::spawn(move || gate.admit().map(|_| ()))
        };
        // Let the helper reach the wait queue, then drain.
        while gate.waiting() == 0 {
            thread::yield_now();
        }
        gate.drain();
        assert_eq!(
            queued.join().expect("no panic").unwrap_err(),
            Refusal::Draining
        );
        assert_eq!(gate.admit().unwrap_err(), Refusal::Draining);
        // The issued permit still drains normally.
        let gate2 = gate.clone();
        let idle = thread::spawn(move || gate2.wait_idle());
        drop(p);
        idle.join().expect("wait_idle returns once active hits 0");
        assert_eq!(gate.active(), 0);
    }
}
