//! `qods-serve` — the speed-of-data job service daemon.
//!
//! Speaks newline-delimited JSON: each input line is one
//! [`RunRequest`] —
//!
//! ```text
//! {"id":"j1","experiments":["table9","fig7"],"overrides":{"n_bits":8}}
//! ```
//!
//! — answered by exactly one `result` (or `error`) line, or a control
//! verb (`{"verb":"stats"}`, `ping`, `shutdown`). By default the
//! daemon serves stdin/stdout; with `--listen ADDR` it serves many
//! concurrent TCP clients (thread-per-connection) through the same
//! core: in-flight duplicates coalesce onto one execution, admission
//! control sheds load past the queue bound with typed `overloaded`
//! errors, and `stats` reports latency percentiles, cache hit rates,
//! and coalesce counts. Result lines carry no timing, so for a fixed
//! request sequence the output stream is byte-reproducible on either
//! transport (CI pipes a batch through and diffs against direct
//! registry runs).
//!
//! ```text
//! qods-serve [--listen ADDR] [--threads N] [--progress] [--no-cache]
//!            [--base quick|paper] [--artifacts DIR] [--trace-out FILE]
//!            [--max-connections N] [--max-inflight N] [--max-queue N]
//!            [--max-requests-per-conn N] [--default-deadline MS]
//!            [--max-line-len BYTES] [--idle-timeout SECS]
//! ```
//!
//! Robustness knobs: `--default-deadline` budgets every request that
//! does not carry its own `deadline_ms`; `--max-line-len` caps how
//! many bytes one NDJSON line may hold before it answers
//! `bad_request`; `--idle-timeout` reaps TCP connections that stall
//! mid-line or go silent. Setting `QODS_FAULT_PLAN` arms the
//! deterministic fault injector (chaos testing; see `qods-fault`).
//!
//! Observability: `--trace-out FILE` (or `QODS_TRACE=FILE` in the
//! environment) arms end-to-end request tracing and writes a Chrome
//! trace-event JSON on shutdown — load it at `ui.perfetto.dev` or
//! `chrome://tracing`. Tracing never blocks serving (bounded buffers,
//! events dropped past capacity and counted) and never changes served
//! bytes: result lines are byte-identical with tracing on or off.

use qods_net::server::{serve_stdio, NetServer, ServeCore, ServeOptions};
use qods_service::prelude::*;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> &'static str {
    "usage: qods-serve [--listen ADDR] [--threads N] [--progress] [--no-cache]\n\
     \t\t  [--base quick|paper] [--artifacts DIR] [--trace-out FILE]\n\
     \t\t  [--max-connections N] [--max-inflight N] [--max-queue N]\n\
     \t\t  [--max-requests-per-conn N] [--default-deadline MS]\n\
     \t\t  [--max-line-len BYTES] [--idle-timeout SECS]\n\
     \n\
     Reads one JSON request per line:\n\
     {\"id\":\"j1\",\"experiments\":[\"table9\"],\"overrides\":{\"n_bits\":8}}\n\
     (empty `experiments` = the full registry; overrides are sparse)\n\
     or a control verb ({\"verb\":\"stats\"|\"ping\"|\"shutdown\"}), and\n\
     writes one `result`/`error` (or verb-answer) JSON line per request.\n\
     --listen ADDR serve TCP clients on ADDR (e.g. 127.0.0.1:7878; port 0\n\
     \t\t  picks one — see the `listening on` stderr line); default\n\
     \t\t  is the stdio daemon\n\
     --threads N   pin every worker pool in the process to N threads\n\
     --progress    stream `started`/`experiment` lines as work finishes\n\
     --no-cache    disable the content-addressed cache (cold service)\n\
     --base quick  resolve overrides against the smoke config, not the paper's\n\
     --artifacts DIR  persist compiled kernel artifacts under DIR\n\
     \t\t  (default results/.artifacts; QODS_ARTIFACT_DIR overrides;\n\
     \t\t  empty DIR keeps artifacts in memory only)\n\
     --trace-out FILE  arm request tracing; write a Chrome trace-event\n\
     \t\t  JSON (ui.perfetto.dev loads it) to FILE on shutdown\n\
     \t\t  (QODS_TRACE=FILE does the same from the environment)\n\
     --max-connections N      concurrent TCP clients (default 64)\n\
     --max-inflight N         jobs executing concurrently (default 32)\n\
     --max-queue N            jobs waiting for a slot; more shed as\n\
     \t\t  `overloaded` errors (default 64)\n\
     --max-requests-per-conn N  job lines one connection may submit\n\
     \t\t  (default 0 = unlimited)\n\
     --default-deadline MS    budget for requests without their own\n\
     \t\t  deadline_ms; exceeded runs answer `deadline_exceeded`\n\
     \t\t  (default 0 = no default budget)\n\
     --max-line-len BYTES     longest accepted NDJSON request line;\n\
     \t\t  longer lines answer `bad_request` (default 1048576)\n\
     --idle-timeout SECS      close TCP connections idle this long\n\
     \t\t  (default 300; 0 = never reap)"
}

/// Parses one `--flag N` unsigned argument or prints usage and fails.
fn parse_count(flag: &str, value: Option<String>) -> Result<usize, ExitCode> {
    match value.and_then(|n| n.parse::<usize>().ok()) {
        Some(n) => Ok(n),
        None => {
            eprintln!("{flag} needs a non-negative integer\n{}", usage());
            Err(ExitCode::FAILURE)
        }
    }
}

fn main() -> ExitCode {
    let mut threads: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut caching = true;
    let mut artifacts: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut base = StudyConfig::default();
    let mut options = ServeOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr),
                None => {
                    eprintln!(
                        "--listen needs an address (e.g. 127.0.0.1:7878)\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--progress" => options.progress = true,
            "--no-cache" => caching = false,
            "--artifacts" => match args.next() {
                Some(dir) => artifacts = Some(dir),
                None => {
                    eprintln!("--artifacts needs a directory (or \"\")\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match args.next() {
                Some(path) if !path.is_empty() => trace_out = Some(path),
                _ => {
                    eprintln!("--trace-out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--base" => match args.next().as_deref() {
                Some("quick") => base = StudyConfig::smoke(),
                Some("paper") => base = StudyConfig::default(),
                other => {
                    eprintln!(
                        "--base must be `quick` or `paper`, got {other:?}\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--max-connections" => match parse_count(&a, args.next()) {
                Ok(n) if n >= 1 => options.max_connections = n,
                Ok(_) => {
                    eprintln!("--max-connections needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                Err(code) => return code,
            },
            "--max-inflight" => match parse_count(&a, args.next()) {
                Ok(n) if n >= 1 => options.max_inflight = n,
                Ok(_) => {
                    eprintln!("--max-inflight needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                Err(code) => return code,
            },
            "--max-queue" => match parse_count(&a, args.next()) {
                Ok(n) => options.max_queue = n,
                Err(code) => return code,
            },
            "--max-requests-per-conn" => match parse_count(&a, args.next()) {
                Ok(n) => options.max_requests_per_conn = n as u64,
                Err(code) => return code,
            },
            "--default-deadline" => match parse_count(&a, args.next()) {
                Ok(n) => options.default_deadline_ms = n as u64,
                Err(code) => return code,
            },
            "--max-line-len" => match parse_count(&a, args.next()) {
                Ok(n) if n >= 1 => options.max_line_len = n,
                Ok(_) => {
                    eprintln!("--max-line-len needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
                Err(code) => return code,
            },
            "--idle-timeout" => match parse_count(&a, args.next()) {
                Ok(n) => options.idle_timeout_secs = n as u64,
                Err(code) => return code,
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
    }

    // Chaos testing: a QODS_FAULT_PLAN in the environment arms the
    // deterministic fault injector before any serving state exists.
    match qods_fault::arm_from_env() {
        Ok(false) => {}
        Ok(true) => eprintln!("qods-serve: fault injection armed from QODS_FAULT_PLAN"),
        Err(e) => {
            eprintln!("qods-serve: bad QODS_FAULT_PLAN: {e}");
            return ExitCode::FAILURE;
        }
    }

    // Observability: an explicit --trace-out wins; otherwise
    // QODS_TRACE can arm tracing (and optionally name the file).
    match (&trace_out, qods_obs::trace::arm_from_env()) {
        (Some(_), _) => qods_obs::trace::enable(),
        (None, env_path) => trace_out = env_path,
    }
    if qods_obs::trace::enabled() {
        eprintln!(
            "qods-serve: request tracing armed ({})",
            trace_out.as_deref().unwrap_or("buffer only")
        );
    }

    // Pin every pool in the process (sweeps and Monte-Carlo included),
    // then build the scheduler on the same count.
    if let Some(n) = threads {
        qods_service::pool::set_thread_override(Some(n));
    }
    // Attach the disk artifact tier before any compilation: warm-disk
    // daemon starts skip kernel lowering entirely. An explicit empty
    // `--artifacts` keeps the store in memory.
    let artifacts =
        artifacts.unwrap_or_else(|| qods_core::compile::DEFAULT_ARTIFACT_DIR.to_string());
    let store = if artifacts.is_empty() {
        qods_core::compile::ArtifactStore::process()
    } else {
        qods_core::compile::ArtifactStore::init_process(std::path::Path::new(&artifacts))
    };
    let scheduler = Scheduler::with_options(base, qods_service::pool::host_threads(), caching);
    eprintln!(
        "qods-serve: ready ({} worker threads, cache {}, artifacts {})",
        scheduler.threads(),
        if caching { "on" } else { "off" },
        store
            .dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "in-memory".to_string()),
    );
    let core = Arc::new(ServeCore::new(scheduler, options));

    let outcome = match listen {
        None => match serve_stdio(&core) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some(addr) => {
            let server = match NetServer::bind(core, &addr) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("bind {addr} failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // Tests and scripts parse this line for the resolved port.
            eprintln!("qods-serve: listening on {}", server.local_addr());
            match server.serve() {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("serve failed: {e}");
                    ExitCode::FAILURE
                }
            }
        }
    };

    // Flush the trace after the drain: every admitted job has
    // finished, so its spans are in the buffer.
    if let Some(path) = trace_out {
        let events = qods_obs::trace::tracer().drain();
        let dropped = qods_obs::trace::tracer().dropped();
        match std::fs::write(&path, qods_obs::export::to_chrome(&events)) {
            Ok(()) => eprintln!(
                "qods-serve: wrote {} trace events to {path} ({dropped} dropped)",
                events.len()
            ),
            Err(e) => eprintln!("qods-serve: trace write to {path} failed: {e}"),
        }
    }
    outcome
}
