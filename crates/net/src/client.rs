//! A minimal blocking NDJSON client for the TCP transport — what the
//! integration tests and the `repro --load --connections N` load
//! generator drive the server with.
//!
//! [`Client::roundtrip_retrying`] adds the robustness half: transient
//! failures — an `overloaded` shed, a timeout, a reset or torn
//! connection — are retried with seeded exponential backoff and
//! jitter (deterministic per [`RetryPolicy::seed`], no RNG
//! dependency), reconnecting to the stored address when the transport
//! itself died. Non-transient typed errors (`bad_request`,
//! `internal_error`, …) are returned as-is: retrying those would just
//! repeat the answer.

use crate::protocol::{MetricsLine, StatsLine};
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// When and how [`Client::roundtrip_retrying`] retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// First backoff; doubles per attempt.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_delay_ms: 10,
            max_delay_ms: 500,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based): exponential from
    /// [`RetryPolicy::base_delay_ms`], capped, plus up to 50% seeded
    /// jitter so a herd of retrying clients decorrelates.
    fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.max_delay_ms);
        let jitter = splitmix64(self.seed.wrapping_add(u64::from(attempt))) % (exp / 2 + 1);
        Duration::from_millis(exp + jitter)
    }
}

/// SplitMix64: the one-liner generator behind the jitter stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether an I/O failure is worth a reconnect-and-retry.
fn retryable(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// One NDJSON connection to a `qods-serve --listen` server.
pub struct Client {
    addr: SocketAddr,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    retry: RetryPolicy,
    retries: u64,
}

impl Client {
    /// Connects to `addr` with the default [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// The connect/clone error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connects to `addr` with an explicit retry policy.
    ///
    /// # Errors
    ///
    /// The connect/clone error.
    pub fn connect_with(addr: SocketAddr, retry: RetryPolicy) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            addr,
            reader,
            writer,
            retry,
            retries: 0,
        })
    }

    /// How many times this client has retried a request (the
    /// robustness counter `repro --load` aggregates).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drops the current connection and dials the stored address
    /// again.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let writer = TcpStream::connect(self.addr)?;
        self.reader = BufReader::new(writer.try_clone()?);
        self.writer = writer;
        Ok(())
    }

    /// Sends one raw request line (the newline is added here).
    ///
    /// # Errors
    ///
    /// The write error.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends one serializable request (e.g. a `RunRequest`).
    ///
    /// # Errors
    ///
    /// The write error, or `InvalidData` if the request does not
    /// serialize (a non-finite float in an override, for instance).
    pub fn send<T: Serialize>(&mut self, request: &T) -> std::io::Result<()> {
        let line = serde_json::to_string(request)
            .map_err(|e| invalid(&format!("request did not serialize: {e}")))?;
        self.send_line(&line)
    }

    /// Reads the next response line; `None` on server EOF.
    ///
    /// # Errors
    ///
    /// The read error.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends one request line and returns its (single) response line;
    /// `None` if the server closed instead of answering. Only valid
    /// when the server is not in `--progress` mode (progress lines
    /// would arrive first).
    ///
    /// # Errors
    ///
    /// The transport error.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<Option<String>> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// [`Client::roundtrip`] with transient-failure retries: an
    /// `overloaded` response, a transport timeout, or a dropped
    /// connection backs off (exponential + seeded jitter) and tries
    /// again, reconnecting when the socket died — up to
    /// [`RetryPolicy::max_retries`] times. Every retry increments
    /// [`Client::retries`]. Any other typed error line is final and
    /// returned as-is.
    ///
    /// # Errors
    ///
    /// The last transport error once retries are exhausted.
    pub fn roundtrip_retrying(&mut self, line: &str) -> std::io::Result<Option<String>> {
        let mut attempt: u32 = 0;
        loop {
            let outcome = self.roundtrip(line);
            let transient = match &outcome {
                Ok(Some(response)) => response.contains(&crate::protocol::kind_fragment(
                    crate::protocol::kind::OVERLOADED,
                )),
                // Server closed mid-request: worth one more dial.
                Ok(None) => true,
                Err(e) => retryable(e.kind()),
            };
            if !transient || attempt >= self.retry.max_retries {
                return outcome;
            }
            std::thread::sleep(self.retry.backoff(attempt));
            self.retries += 1;
            attempt += 1;
            if self.reconnect().is_err() {
                // The server may still be mid-restart; the next loop
                // iteration fails fast on the dead socket and retries.
                continue;
            }
        }
    }

    /// Issues the `stats` verb and parses the answer.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the answer does not
    /// parse as a stats line (or the server closed first).
    pub fn stats(&mut self) -> std::io::Result<StatsLine> {
        let line = self
            .roundtrip("{\"verb\":\"stats\"}")?
            .ok_or_else(|| invalid("server closed before answering stats"))?;
        serde_json::from_str(&line)
            .map_err(|e| invalid(&format!("stats line did not parse: {e}: {line}")))
    }

    /// Issues the `metrics` verb and parses the full registry
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the answer does not
    /// parse as a metrics line (or the server closed first).
    pub fn metrics(&mut self) -> std::io::Result<MetricsLine> {
        let line = self
            .roundtrip("{\"verb\":\"metrics\"}")?
            .ok_or_else(|| invalid("server closed before answering metrics"))?;
        serde_json::from_str(&line)
            .map_err(|e| invalid(&format!("metrics line did not parse: {e}: {line}")))
    }

    /// Issues the `ping` verb and checks for the `pong` answer.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on a non-pong answer.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.roundtrip("{\"verb\":\"ping\"}")? {
            Some(line) if line.contains("\"event\":\"pong\"") => Ok(()),
            other => Err(invalid(&format!("expected pong, got {other:?}"))),
        }
    }

    /// Issues the `shutdown` verb and returns the acknowledgement
    /// line (the server drains and exits after it).
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the server closed
    /// without acknowledging.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        self.roundtrip("{\"verb\":\"shutdown\"}")?
            .ok_or_else(|| invalid("server closed before acknowledging shutdown"))
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy::default();
        // Jitter adds at most 50%, so the deterministic floor is the
        // exponential schedule and the ceiling is 1.5x the cap.
        for attempt in 0..8 {
            let d = policy.backoff(attempt).as_millis() as u64;
            let floor = (policy.base_delay_ms << attempt).min(policy.max_delay_ms);
            assert!(d >= floor, "attempt {attempt}: {d} < {floor}");
            assert!(
                d <= policy.max_delay_ms + policy.max_delay_ms / 2,
                "attempt {attempt}: {d} above jittered cap"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let a = RetryPolicy::default();
        let b = RetryPolicy::default();
        assert_eq!(a.backoff(3), b.backoff(3));
        let c = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        // Different seeds *may* collide on one attempt; across four
        // they must not all agree.
        assert!((0..4).any(|i| a.backoff(i) != c.backoff(i)));
    }

    #[test]
    fn transient_error_kinds_are_retryable_and_data_errors_are_not() {
        assert!(retryable(std::io::ErrorKind::TimedOut));
        assert!(retryable(std::io::ErrorKind::ConnectionReset));
        assert!(retryable(std::io::ErrorKind::UnexpectedEof));
        assert!(!retryable(std::io::ErrorKind::InvalidData));
        assert!(!retryable(std::io::ErrorKind::PermissionDenied));
    }
}
