//! A minimal blocking NDJSON client for the TCP transport — what the
//! integration tests and the `repro --load --connections N` load
//! generator drive the server with.

use crate::protocol::StatsLine;
use serde::Serialize;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// One NDJSON connection to a `qods-serve --listen` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// The connect/clone error.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one raw request line (the newline is added here).
    ///
    /// # Errors
    ///
    /// The write error.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Sends one serializable request (e.g. a `RunRequest`).
    ///
    /// # Errors
    ///
    /// The write error.
    pub fn send<T: Serialize>(&mut self, request: &T) -> std::io::Result<()> {
        self.send_line(&serde_json::to_string(request).expect("requests always serialize"))
    }

    /// Reads the next response line; `None` on server EOF.
    ///
    /// # Errors
    ///
    /// The read error.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    /// Sends one request line and returns its (single) response line;
    /// `None` if the server closed instead of answering. Only valid
    /// when the server is not in `--progress` mode (progress lines
    /// would arrive first).
    ///
    /// # Errors
    ///
    /// The transport error.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<Option<String>> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Issues the `stats` verb and parses the answer.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the answer does not
    /// parse as a stats line (or the server closed first).
    pub fn stats(&mut self) -> std::io::Result<StatsLine> {
        let line = self
            .roundtrip("{\"verb\":\"stats\"}")?
            .ok_or_else(|| invalid("server closed before answering stats"))?;
        serde_json::from_str(&line)
            .map_err(|e| invalid(&format!("stats line did not parse: {e}: {line}")))
    }

    /// Issues the `ping` verb and checks for the `pong` answer.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` on a non-pong answer.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.roundtrip("{\"verb\":\"ping\"}")? {
            Some(line) if line.contains("\"event\":\"pong\"") => Ok(()),
            other => Err(invalid(&format!("expected pong, got {other:?}"))),
        }
    }

    /// Issues the `shutdown` verb and returns the acknowledgement
    /// line (the server drains and exits after it).
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` when the server closed
    /// without acknowledging.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        self.roundtrip("{\"verb\":\"shutdown\"}")?
            .ok_or_else(|| invalid("server closed before acknowledging shutdown"))
    }
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}
