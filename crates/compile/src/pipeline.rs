//! The staged pipeline: `KernelSpec -> Ir -> ScheduledCircuit ->
//! Characterization`, every stage a pure, content-hashed transform
//! memoized in the [`ArtifactStore`].
//!
//! ## Stages and key derivation
//!
//! | stage | artifact | key inputs |
//! |---|---|---|
//! | `ir` | kernel-level [`Circuit`] | schema, family, width |
//! | `sched` | [`ScheduledCircuit`] (lowered + scheduled) | schema, family, width, synthesis budget (rotation families only) |
//! | `char` | [`Characterization`] | schema, upstream `sched` hash, latency model id |
//!
//! Keys chain by content: the `char` key embeds the `sched` hash,
//! which embeds everything lowering depends on, so a change anywhere
//! upstream re-addresses everything downstream and nothing is ever
//! served stale. Adder families deliberately *exclude* the synthesis
//! budget from their keys — their lowering never synthesizes, so two
//! budgets share one artifact.
//!
//! ## Fan-out
//!
//! [`Compiler::compile_many`] runs whole per-item chains on the
//! shared `qods-pool` — item A can be characterizing while item B is
//! still lowering (no barrier between stages), results are assembled
//! by index, and every stage is a pure function of its key, so output
//! is bit-identical at any thread count and any cache state.

use crate::hash::{hash_hex, hash_value};
use crate::store::{ArtifactKey, ArtifactStore, ARTIFACT_SCHEMA};
use qods_circuit::characterize::{characterize_with, CircuitReport};
use qods_circuit::circuit::{Circuit, NoSynth};
use qods_circuit::dag::Dag;
use qods_circuit::latency_model::CharacterizationModel;
use qods_circuit::schedule::Schedule;
use qods_kernels::{KernelError, KernelSpec, SynthAdapter};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// The rotation-synthesis budget lowering runs under (mirrors the
/// study's `synth_max_t` / `synth_target` knobs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthBudget {
    /// Maximum T-count for pi/2^k sequences.
    pub max_t: u32,
    /// Early-stop approximation distance.
    pub target_distance: f64,
}

impl Default for SynthBudget {
    fn default() -> Self {
        // The paper configuration's budget.
        SynthBudget {
            max_t: 12,
            target_distance: 1e-2,
        }
    }
}

/// Stage-2 artifact: the physical Clifford+T circuit with its
/// speed-of-data schedule summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledCircuit {
    /// The lowered circuit.
    pub circuit: Circuit,
    /// Speed-of-data makespan (us) under the ion-trap model.
    pub makespan_us: f64,
    /// Dependency depth of the lowered circuit.
    pub depth: usize,
}

/// Stage-3 artifact: the full characterization of one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Characterization {
    /// The spec this characterizes.
    pub spec: KernelSpec,
    /// Speed-of-data makespan (us), copied from the schedule stage.
    pub makespan_us: f64,
    /// Tables 2/3-shaped report.
    pub report: CircuitReport,
}

/// All three artifacts of one fully compiled kernel.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The spec that was compiled.
    pub spec: KernelSpec,
    /// Stage 1: kernel IR.
    pub ir: Arc<Circuit>,
    /// Stage 2: lowered + scheduled.
    pub scheduled: Arc<ScheduledCircuit>,
    /// Stage 3: characterization.
    pub characterization: Arc<Characterization>,
}

/// The staged compiler: pure transforms over an [`ArtifactStore`].
/// Cheap to construct and clone — state lives in the (shared) store
/// and in one shared synthesis cache.
#[derive(Debug, Clone)]
pub struct Compiler {
    store: Arc<ArtifactStore>,
    synth: SynthBudget,
    /// One adapter for every lowering this compiler runs: rotation
    /// searches are deterministic, so sharing the per-(k, dagger)
    /// sequence cache across kernels and widths changes nothing but
    /// the wall clock.
    adapter: Arc<SynthAdapter>,
}

impl Compiler {
    /// A compiler over the given store and synthesis budget.
    pub fn new(store: Arc<ArtifactStore>, synth: SynthBudget) -> Self {
        let adapter = Arc::new(SynthAdapter::with_budget(
            synth.max_t,
            synth.target_distance,
        ));
        Compiler {
            store,
            synth,
            adapter,
        }
    }

    /// The store this compiler memoizes into.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The synthesis budget lowering runs under.
    pub fn synth(&self) -> SynthBudget {
        self.synth
    }

    /// The `ir` stage key for a spec.
    pub fn ir_key(&self, spec: KernelSpec) -> ArtifactKey {
        let inputs = Value::Object(vec![
            ("schema".to_string(), ARTIFACT_SCHEMA.to_value()),
            ("family".to_string(), spec.family.to_value()),
            ("width".to_string(), spec.width.to_value()),
        ]);
        ArtifactKey {
            stage: "ir",
            hash: hash_value(&inputs),
        }
    }

    /// The `sched` stage key: IR inputs plus — for rotation families
    /// only — the synthesis budget.
    pub fn scheduled_key(&self, spec: KernelSpec) -> ArtifactKey {
        let mut fields = vec![
            ("schema".to_string(), ARTIFACT_SCHEMA.to_value()),
            ("family".to_string(), spec.family.to_value()),
            ("width".to_string(), spec.width.to_value()),
        ];
        if spec.family.uses_synthesis() {
            fields.push(("synth_max_t".to_string(), self.synth.max_t.to_value()));
            fields.push((
                "synth_target".to_string(),
                self.synth.target_distance.to_value(),
            ));
        }
        ArtifactKey {
            stage: "sched",
            hash: hash_value(&Value::Object(fields)),
        }
    }

    /// The `char` stage key: chained off the `sched` content hash.
    pub fn characterization_key(&self, spec: KernelSpec) -> ArtifactKey {
        let inputs = Value::Object(vec![
            ("schema".to_string(), ARTIFACT_SCHEMA.to_value()),
            (
                "sched".to_string(),
                hash_hex(self.scheduled_key(spec).hash).to_value(),
            ),
            ("model".to_string(), "ion_trap".to_value()),
        ]);
        ArtifactKey {
            stage: "char",
            hash: hash_value(&inputs),
        }
    }

    /// Stage 1: the kernel-level IR circuit.
    ///
    /// # Errors
    ///
    /// [`KernelError`] for an invalid spec (nothing is computed or
    /// cached on error).
    pub fn ir(&self, spec: KernelSpec) -> Result<Arc<Circuit>, KernelError> {
        spec.validate()?;
        Ok(self
            .store
            .get_or_compute(self.ir_key(spec), || spec.build_ir()))
    }

    /// Stage 2: the lowered physical circuit with its speed-of-data
    /// schedule summary. Pulls stage 1 through the store (hitting its
    /// cache when warm).
    ///
    /// # Errors
    ///
    /// [`KernelError`] for an invalid spec.
    pub fn scheduled(&self, spec: KernelSpec) -> Result<Arc<ScheduledCircuit>, KernelError> {
        spec.validate()?;
        Ok(self.store.get_or_compute(self.scheduled_key(spec), || {
            let ir = self
                .ir(spec)
                .unwrap_or_else(|e| unreachable!("spec validated above: {e}"));
            let lowered = if spec.family.uses_synthesis() {
                ir.lower(self.adapter.as_ref())
            } else {
                ir.lower(&NoSynth)
            };
            let model = CharacterizationModel::ion_trap();
            let dag = Dag::build(&lowered);
            let schedule = Schedule::speed_of_data_on(&dag, &lowered, &model);
            ScheduledCircuit {
                makespan_us: schedule.makespan_us,
                depth: dag.depth(),
                circuit: lowered,
            }
        }))
    }

    /// Stage 3: the characterization. Pulls stage 2 through the store.
    ///
    /// # Errors
    ///
    /// [`KernelError`] for an invalid spec.
    pub fn characterization(&self, spec: KernelSpec) -> Result<Arc<Characterization>, KernelError> {
        spec.validate()?;
        Ok(self
            .store
            .get_or_compute(self.characterization_key(spec), || {
                let scheduled = self
                    .scheduled(spec)
                    .unwrap_or_else(|e| unreachable!("spec validated above: {e}"));
                Characterization {
                    spec,
                    makespan_us: scheduled.makespan_us,
                    report: characterize_with(
                        &scheduled.circuit,
                        &CharacterizationModel::ion_trap(),
                    ),
                }
            }))
    }

    /// Runs the full chain for one spec.
    ///
    /// # Errors
    ///
    /// [`KernelError`] for an invalid spec.
    pub fn compile(&self, spec: KernelSpec) -> Result<CompiledKernel, KernelError> {
        Ok(CompiledKernel {
            spec,
            ir: self.ir(spec)?,
            scheduled: self.scheduled(spec)?,
            characterization: self.characterization(spec)?,
        })
    }

    /// Compiles a batch of specs, chaining all three stages per item
    /// on `threads` shared-pool workers (no barrier between stages —
    /// one kernel can characterize while another is still lowering).
    /// Results are returned in input order; every spec is validated
    /// up front so nothing runs on a bad batch.
    ///
    /// # Errors
    ///
    /// The first [`KernelError`] in the batch.
    pub fn compile_many(
        &self,
        specs: &[KernelSpec],
        threads: usize,
    ) -> Result<Vec<CompiledKernel>, KernelError> {
        for spec in specs {
            spec.validate()?;
        }
        Ok(qods_pool::run_indexed(specs.len(), threads, |i| {
            self.compile(specs[i])
                .unwrap_or_else(|e| unreachable!("specs validated above: {e}"))
        }))
    }

    /// Like [`Compiler::compile_many`] but materializing only the
    /// characterization stage of each item (the IR and scheduled
    /// artifacts are still produced — and cached — on the way).
    ///
    /// # Errors
    ///
    /// The first [`KernelError`] in the batch.
    pub fn characterize_many(
        &self,
        specs: &[KernelSpec],
        threads: usize,
    ) -> Result<Vec<Arc<Characterization>>, KernelError> {
        for spec in specs {
            spec.validate()?;
        }
        Ok(qods_pool::run_indexed(specs.len(), threads, |i| {
            self.characterization(specs[i])
                .unwrap_or_else(|e| unreachable!("specs validated above: {e}"))
        }))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use qods_kernels::KernelFamily;

    fn compiler() -> Compiler {
        Compiler::new(
            Arc::new(ArtifactStore::in_memory()),
            SynthBudget {
                max_t: 6,
                target_distance: 5e-2,
            },
        )
    }

    #[test]
    fn stages_chain_and_memoize() {
        let c = compiler();
        let spec = KernelSpec::new(KernelFamily::Qrca, 4).expect("valid");
        let ch = c.characterization(spec).expect("compiles");
        assert_eq!(ch.report.n_qubits, 13);
        assert!(ch.makespan_us > 0.0);
        // char pulled sched pulled ir: 3 computes, no hits yet beyond
        // the chain's own store round-trips.
        assert_eq!(c.store().stats().computed, 3);
        let again = c.characterization(spec).expect("cached");
        assert!(Arc::ptr_eq(&ch, &again));
        assert_eq!(c.store().stats().computed, 3);
    }

    #[test]
    fn adder_keys_ignore_the_synth_budget_and_rotation_keys_do_not() {
        let store = Arc::new(ArtifactStore::in_memory());
        let a = Compiler::new(Arc::clone(&store), SynthBudget::default());
        let b = Compiler::new(
            store,
            SynthBudget {
                max_t: 6,
                target_distance: 5e-2,
            },
        );
        let adder = KernelSpec::new(KernelFamily::Qrca, 8).expect("valid");
        let qft = KernelSpec::new(KernelFamily::Qft, 8).expect("valid");
        assert_eq!(a.scheduled_key(adder), b.scheduled_key(adder));
        assert_ne!(a.scheduled_key(qft), b.scheduled_key(qft));
        // And the chained char keys follow.
        assert_eq!(a.characterization_key(adder), b.characterization_key(adder));
        assert_ne!(a.characterization_key(qft), b.characterization_key(qft));
    }

    #[test]
    fn keys_separate_stages_families_and_widths() {
        let c = compiler();
        let s1 = KernelSpec::new(KernelFamily::Qrca, 8).expect("valid");
        let s2 = KernelSpec::new(KernelFamily::Qrca, 9).expect("valid");
        let s3 = KernelSpec::new(KernelFamily::Qcla, 8).expect("valid");
        assert_ne!(c.ir_key(s1), c.ir_key(s2));
        assert_ne!(c.ir_key(s1), c.ir_key(s3));
        assert_ne!(c.ir_key(s1).stage, c.scheduled_key(s1).stage);
    }

    #[test]
    fn invalid_specs_are_typed_errors_and_cache_nothing() {
        let c = compiler();
        let bad = KernelSpec {
            family: KernelFamily::Qft,
            width: 0,
        };
        assert!(c.ir(bad).is_err());
        assert!(c.scheduled(bad).is_err());
        assert!(c.characterization(bad).is_err());
        assert!(c.compile_many(&[bad], 2).is_err());
        assert!(c.store().is_empty());
    }

    #[test]
    fn compile_many_is_thread_count_invariant() {
        let specs: Vec<KernelSpec> = [(KernelFamily::Qrca, 3), (KernelFamily::Qft, 4)]
            .into_iter()
            .map(|(f, w)| KernelSpec::new(f, w).expect("valid"))
            .collect();
        let base: Vec<Characterization> = compiler()
            .compile_many(&specs, 1)
            .expect("compiles")
            .into_iter()
            .map(|k| (*k.characterization).clone())
            .collect();
        for threads in [2, 8] {
            let got: Vec<Characterization> = compiler()
                .compile_many(&specs, threads)
                .expect("compiles")
                .into_iter()
                .map(|k| (*k.characterization).clone())
                .collect();
            assert_eq!(got, base, "threads = {threads}");
        }
    }
}
