//! # qods-compile — the staged kernel-compilation pipeline
//!
//! Before this crate, the lowering chain *kernel → fault-tolerant
//! circuit → schedule → characterization* lived as one opaque
//! in-process step inside the study context: recomputed from scratch
//! in every process, only at the paper's fixed kernel widths. This
//! crate makes it an explicit pipeline of pure, content-hashed
//! transforms —
//!
//! ```text
//! KernelSpec --ir--> Circuit --sched--> ScheduledCircuit --char--> Characterization
//! ```
//!
//! — memoized in a two-tier [`store::ArtifactStore`]: an in-process
//! map (warm-process hits across any number of study contexts) plus
//! an optional on-disk store of versioned, atomically written,
//! corruption-tolerant JSON artifacts (cold-process hits across
//! `repro`/`qods-serve` invocations; default `results/.artifacts/`,
//! overridden by `QODS_ARTIFACT_DIR`).
//!
//! Everything is keyed by content ([`hash`]: FNV-1a over canonical
//! JSON, the same primitive the `qods-service` request cache uses),
//! so stale artifacts are structurally impossible — changed inputs
//! address different files. [`pipeline::Compiler::compile_many`] fans
//! whole per-item chains out over the `qods-pool` workers with no
//! barrier between stages and is bit-identical at any thread count
//! and any cache state.
//!
//! # Example
//!
//! ```
//! use qods_compile::prelude::*;
//! use std::sync::Arc;
//!
//! let compiler = Compiler::new(
//!     Arc::new(ArtifactStore::in_memory()),
//!     SynthBudget { max_t: 6, target_distance: 5e-2 },
//! );
//! let spec = KernelSpec::parse("qrca:4").expect("valid spec");
//! let compiled = compiler.compile(spec).expect("compiles");
//! assert_eq!(compiled.characterization.report.n_qubits, 13);
//! // The second compile is served entirely from the store.
//! let computed = compiler.store().stats().computed;
//! compiler.compile(spec).expect("cached");
//! assert_eq!(compiler.store().stats().computed, computed);
//! ```

// The compile store sits on the serving path: no panicking unwraps —
// proven invariants use `unwrap_or_else(|e| unreachable!(...))`,
// locks use `unwrap_or_else(PoisonError::into_inner)`. Tests opt
// back in locally with `#[allow]`. Lint rule R1 enforces the same.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod hash;
pub mod pipeline;
pub mod store;

pub use pipeline::{Characterization, CompiledKernel, Compiler, ScheduledCircuit, SynthBudget};
pub use store::{
    ArtifactKey, ArtifactStore, StoreStats, ARTIFACT_DIR_ENV, ARTIFACT_SCHEMA, DEFAULT_ARTIFACT_DIR,
};

use qods_kernels::{KernelFamily, KernelSpec};

/// The paper's benchmark set at a given operand width: QRCA, QCLA,
/// and QFT, in the paper's order (`n_bits` = 32 reproduces §3.1).
pub fn paper_specs(n_bits: usize) -> Vec<KernelSpec> {
    [KernelFamily::Qrca, KernelFamily::Qcla, KernelFamily::Qft]
        .into_iter()
        .map(|family| KernelSpec {
            family,
            width: n_bits,
        })
        .collect()
}

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::pipeline::{
        Characterization, CompiledKernel, Compiler, ScheduledCircuit, SynthBudget,
    };
    pub use crate::store::{ArtifactKey, ArtifactStore, StoreStats};
    pub use qods_kernels::{KernelError, KernelFamily, KernelSpec};
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_specs_are_the_three_benchmarks() {
        let specs = paper_specs(32);
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].to_string(), "qrca:32");
        assert_eq!(specs[1].to_string(), "qcla:32");
        assert_eq!(specs[2].to_string(), "qft:32");
    }
}
