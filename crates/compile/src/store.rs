//! The two-tier content-addressed artifact store.
//!
//! Tier 1 is an in-process map of `Arc`-shared artifacts (warm-process
//! hits: any number of study contexts in one process share each
//! compiled artifact). Tier 2 is an optional on-disk store of
//! versioned JSON files (cold-process hits: a fresh process reuses
//! what an earlier one compiled).
//!
//! ## Disk format and versioning
//!
//! One file per artifact, named `<stage>-<hash16>.json`, holding a
//! versioned envelope:
//!
//! ```text
//! {"schema": 1, "stage": "sched", "key": "1f2e...", "payload": {...}}
//! ```
//!
//! Writes are atomic (temp file + rename) so a crashed or concurrent
//! writer can never leave a half-written artifact under the final
//! name. Reads are corruption-tolerant: *any* defect — unreadable
//! file, malformed JSON, schema/stage/key mismatch, payload that
//! fails typed deserialization — counts as a miss (and bumps
//! [`StoreStats::corrupt_reads`]); the artifact is recomputed and the
//! file rewritten. A bad cache can cost a recompute, never a crash
//! and never a wrong answer.
//!
//! ## Invalidation
//!
//! There is none, by construction: keys are content hashes of
//! everything the artifact depends on (spec, stage, relevant
//! parameters, [`ARTIFACT_SCHEMA`]), so changing any input addresses
//! a different file and stale entries are simply never read again.
//! Bumping [`ARTIFACT_SCHEMA`] (when an artifact *encoding* changes
//! shape) retires every existing file the same way.
//!
//! ## Store location
//!
//! The `QODS_ARTIFACT_DIR` environment variable overrides the disk
//! location everywhere (CI and sandboxes point it at a workspace-local
//! or throwaway path); an empty value disables the disk tier. Library
//! code that asks for [`ArtifactStore::process`] without an explicit
//! directory gets memory-only unless the variable is set — binaries
//! opt into the default `results/.artifacts/` via
//! [`ArtifactStore::init_process`].

use crate::hash::hash_hex;
use qods_obs::{sites, Counter, Registry};
use serde::{Deserialize, Serialize, Value};
use std::any::Any;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version of the on-disk artifact encoding. Part of every content
/// hash *and* checked in the envelope, so a schema change invalidates
/// old files both ways.
pub const ARTIFACT_SCHEMA: u32 = 1;

/// Environment variable that overrides the disk-store location (empty
/// value = disable the disk tier).
pub const ARTIFACT_DIR_ENV: &str = "QODS_ARTIFACT_DIR";

/// The disk directory binaries default to. One constant so `repro`
/// and `qods-serve` can never drift onto different directories (which
/// would silently break their shared cold-process cache).
pub const DEFAULT_ARTIFACT_DIR: &str = "results/.artifacts";

/// The address of one artifact: a pipeline stage name plus the
/// content hash of everything the artifact depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey {
    /// Stage name (`"ir"`, `"sched"`, `"char"`), fixed per transform.
    pub stage: &'static str,
    /// Content hash of the stage's canonical input encoding.
    pub hash: u64,
}

impl ArtifactKey {
    /// The disk file name this key is stored under.
    pub fn file_name(&self) -> String {
        format!("{}-{}.json", self.stage, hash_hex(self.hash))
    }
}

impl std::fmt::Display for ArtifactKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.stage, hash_hex(self.hash))
    }
}

/// Store traffic counters (monotonic since store creation). The
/// `computed` counter is the "did the cache actually work" number:
/// a fully warm run reports 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts computed from scratch (both tiers missed).
    pub computed: u64,
    /// Lookups served by the in-process tier.
    pub mem_hits: u64,
    /// Lookups served by the disk tier (deserialized, then retained
    /// in the memory tier).
    pub disk_hits: u64,
    /// Disk files that existed but were unusable (corrupt, stale
    /// schema, wrong key) and were recomputed over.
    pub corrupt_reads: u64,
    /// Disk writes that failed (artifact stays memory-only).
    pub write_errors: u64,
}

impl StoreStats {
    /// Total lookups that found a usable cached artifact.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// The memory tier: one type-erased shared artifact per
/// `(stage, hash)` key.
type MemTier = Mutex<HashMap<(&'static str, u64), Arc<dyn Any + Send + Sync>>>;

/// The two-tier content-addressed artifact store. Cheap to share
/// (`Arc`); all methods take `&self`.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    mem: MemTier,
    /// Per-store metrics registry (`store.*` sites); counters below
    /// are handles into it, so [`ArtifactStore::stats`] and a registry
    /// snapshot always agree.
    metrics: Registry,
    computed: Arc<Counter>,
    mem_hits: Arc<Counter>,
    disk_hits: Arc<Counter>,
    corrupt_reads: Arc<Counter>,
    write_errors: Arc<Counter>,
    /// Monotonic temp-file sequence: `fetch_add` guarantees two
    /// threads writing the same key concurrently get distinct temp
    /// names (a stats counter could be observed at the same value by
    /// both).
    tmp_seq: AtomicU64,
}

/// The one store a process shares by default (see
/// [`ArtifactStore::process`] / [`ArtifactStore::init_process`]).
static PROCESS_STORE: OnceLock<Arc<ArtifactStore>> = OnceLock::new();

impl ArtifactStore {
    /// A store with no disk tier.
    pub fn in_memory() -> Self {
        ArtifactStore::with_dir(None)
    }

    /// A store persisting under `dir` (created lazily on first write).
    pub fn persistent(dir: impl Into<PathBuf>) -> Self {
        ArtifactStore::with_dir(Some(dir.into()))
    }

    /// A store honoring [`ARTIFACT_DIR_ENV`]: the variable's path when
    /// set (empty = memory-only), otherwise `default_dir`, otherwise
    /// memory-only.
    pub fn from_env_or(default_dir: Option<&Path>) -> Self {
        ArtifactStore::resolve(std::env::var(ARTIFACT_DIR_ENV).ok().as_deref(), default_dir)
    }

    /// The location policy behind [`ArtifactStore::from_env_or`],
    /// with the environment value passed in — pure, so tests can
    /// cover every branch without racing `set_var` against the
    /// parallel test harness.
    pub fn resolve(env_value: Option<&str>, default_dir: Option<&Path>) -> Self {
        match env_value {
            Some("") => ArtifactStore::in_memory(),
            Some(dir) => ArtifactStore::persistent(dir),
            None => match default_dir {
                Some(dir) => ArtifactStore::persistent(dir),
                None => ArtifactStore::in_memory(),
            },
        }
    }

    fn with_dir(dir: Option<PathBuf>) -> Self {
        let metrics = Registry::new();
        let computed = metrics.counter(sites::STORE_COMPUTED);
        let mem_hits = metrics.counter(sites::STORE_MEM_HITS);
        let disk_hits = metrics.counter(sites::STORE_DISK_HITS);
        let corrupt_reads = metrics.counter(sites::STORE_CORRUPT_READS);
        let write_errors = metrics.counter(sites::STORE_WRITE_ERRORS);
        ArtifactStore {
            dir,
            mem: Mutex::new(HashMap::new()),
            metrics,
            computed,
            mem_hits,
            disk_hits,
            corrupt_reads,
            write_errors,
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// The process-wide shared store, created on first use as
    /// [`ArtifactStore::from_env_or`]`(None)` — i.e. memory-only
    /// unless [`ARTIFACT_DIR_ENV`] says otherwise. This is the store
    /// `StudyContext::new` and the service `ContextPool` share, which
    /// is what makes warm-process artifact reuse span contexts.
    pub fn process() -> Arc<ArtifactStore> {
        Arc::clone(PROCESS_STORE.get_or_init(|| Arc::new(ArtifactStore::from_env_or(None))))
    }

    /// Initializes the process store with a default disk directory
    /// (still overridden by [`ARTIFACT_DIR_ENV`]). Binaries call this
    /// once at startup *before* any compilation; if the process store
    /// already exists the call is a no-op and the existing store is
    /// returned — location choices never change mid-process.
    pub fn init_process(default_dir: &Path) -> Arc<ArtifactStore> {
        Arc::clone(
            PROCESS_STORE.get_or_init(|| Arc::new(ArtifactStore::from_env_or(Some(default_dir)))),
        )
    }

    /// The disk directory, if this store has a disk tier.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Traffic so far.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            computed: self.computed.get(),
            mem_hits: self.mem_hits.get(),
            disk_hits: self.disk_hits.get(),
            corrupt_reads: self.corrupt_reads.get(),
            write_errors: self.write_errors.get(),
        }
    }

    /// This store's metrics registry (`store.*` counters) — merged
    /// into the serving stack's `metrics` verb snapshot.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// How many artifacts the memory tier holds.
    pub fn len(&self) -> usize {
        qods_pool::plock(&self.mem).len()
    }

    /// Whether the memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The exact bytes the disk tier writes for an artifact — the
    /// versioned envelope as canonical JSON. Exposed so tests can
    /// assert byte-identity between freshly compiled and disk-cached
    /// artifacts.
    pub fn encode_artifact<T: Serialize>(key: ArtifactKey, artifact: &T) -> String {
        let envelope = Value::Object(vec![
            ("schema".to_string(), ARTIFACT_SCHEMA.to_value()),
            ("stage".to_string(), key.stage.to_value()),
            ("key".to_string(), hash_hex(key.hash).to_value()),
            ("payload".to_string(), artifact.to_value()),
        ]);
        serde_json::to_string(&envelope)
            .unwrap_or_else(|e| unreachable!("artifact encoding is always finite: {e}"))
    }

    /// Fetches the artifact at `key`, trying memory, then disk, then
    /// `compute` — computing at most stores, never alters, a result:
    /// the returned value is bit-identical at any cache state because
    /// `compute` must be a pure function of the key's inputs.
    ///
    /// # Panics
    ///
    /// Panics if the same key was previously stored with a different
    /// artifact type (a programming error in key derivation).
    pub fn get_or_compute<T, F>(&self, key: ArtifactKey, compute: F) -> Arc<T>
    where
        T: Serialize + Deserialize + Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        // One span per stage lookup, named for the stage itself; the
        // cache arg records how the lookup resolved (`mem`, `disk`,
        // `computed`, or `healed` when a corrupt file was recomputed
        // over).
        let mut span = qods_obs::span!(stage_site(key.stage), { config_hash: key.hash });
        let map_key = (key.stage, key.hash);
        if let Some(hit) = qods_pool::plock(&self.mem).get(&map_key) {
            self.mem_hits.inc();
            span.note_cache("mem");
            return Arc::clone(hit)
                .downcast::<T>()
                .unwrap_or_else(|_| unreachable!("one artifact type per stage key"));
        }

        let (artifact, from_disk) = match self.read_disk::<T>(key) {
            DiskRead::Hit(artifact) => {
                self.disk_hits.inc();
                span.note_cache("disk");
                (artifact, true)
            }
            outcome => {
                span.note_cache(if matches!(outcome, DiskRead::Corrupt) {
                    "healed"
                } else {
                    "computed"
                });
                let artifact = compute();
                self.computed.inc();
                (artifact, false)
            }
        };
        let artifact = Arc::new(artifact);
        if !from_disk {
            self.write_disk(key, artifact.as_ref());
        }

        // Two threads may have computed the same key concurrently
        // (deterministically, so the results are identical); keep the
        // first insertion as the one canonical Arc.
        let mut mem = qods_pool::plock(&self.mem);
        let entry = mem
            .entry(map_key)
            .or_insert_with(|| Arc::clone(&artifact) as Arc<dyn Any + Send + Sync>);
        Arc::clone(entry)
            .downcast::<T>()
            .unwrap_or_else(|_| unreachable!("one artifact type per stage key"))
    }

    /// Reads and validates the disk file for `key`; any defect is a
    /// tolerated miss. The `store.read` fault site fires once per
    /// successful file read: `io` makes the read report failure,
    /// `corrupt` garbles the bytes before decoding (both then heal
    /// through the ordinary recompute-and-rewrite path).
    fn read_disk<T: Deserialize>(&self, key: ArtifactKey) -> DiskRead<T> {
        let Some(dir) = self.dir.as_ref() else {
            return DiskRead::Miss;
        };
        let _io = qods_obs::span!(sites::COMPILE_STORE, { detail: "read" });
        let path = dir.join(key.file_name());
        let mut text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            // Missing file: a plain cold miss, not corruption.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return DiskRead::Miss,
            Err(_) => {
                self.corrupt_reads.inc();
                return DiskRead::Corrupt;
            }
        };
        match qods_fault::check(qods_fault::site::STORE_READ) {
            Some(qods_fault::FaultAction::IoError) => {
                self.corrupt_reads.inc();
                return DiskRead::Corrupt;
            }
            Some(qods_fault::FaultAction::CorruptRead) => {
                let mut keep = text.len() / 2;
                while keep > 0 && !text.is_char_boundary(keep) {
                    keep -= 1;
                }
                text.truncate(keep);
            }
            _ => {}
        }
        match decode_envelope::<T>(&text, key) {
            Some(artifact) => DiskRead::Hit(artifact),
            None => {
                self.corrupt_reads.inc();
                DiskRead::Corrupt
            }
        }
    }

    /// Writes the artifact atomically; failures are counted, not
    /// propagated (the store then behaves as memory-only for this
    /// artifact). The `store.write` fault site fires once per write:
    /// `io` drops the write entirely (ENOSPC-style), `torn` lands a
    /// truncated file under the *final* name — deliberately bypassing
    /// the temp+rename discipline to simulate external corruption,
    /// which the corruption-tolerant read path must heal.
    fn write_disk<T: Serialize>(&self, key: ArtifactKey, artifact: &T) {
        let Some(dir) = self.dir.as_ref() else {
            return;
        };
        let _io = qods_obs::span!(sites::COMPILE_STORE, { detail: "write" });
        let encoded = ArtifactStore::encode_artifact(key, artifact);
        match qods_fault::check(qods_fault::site::STORE_WRITE) {
            Some(qods_fault::FaultAction::IoError) => {
                self.write_errors.inc();
                return;
            }
            Some(qods_fault::FaultAction::TornWrite) => {
                self.write_errors.inc();
                let mut keep = encoded.len() / 2;
                while keep > 0 && !encoded.is_char_boundary(keep) {
                    keep -= 1;
                }
                let _ = std::fs::create_dir_all(dir);
                let _ = std::fs::write(dir.join(key.file_name()), &encoded[..keep]);
                return;
            }
            _ => {}
        }
        let result = (|| -> std::io::Result<()> {
            std::fs::create_dir_all(dir)?;
            // Unique temp name: concurrent writers of the same key
            // never collide, and rename is atomic within the dir.
            let tmp = dir.join(format!(
                ".tmp-{}-{}-{}",
                std::process::id(),
                self.tmp_seq.fetch_add(1, Ordering::Relaxed),
                key.file_name()
            ));
            std::fs::write(&tmp, encoded)?;
            std::fs::rename(&tmp, dir.join(key.file_name()))
        })();
        if result.is_err() {
            self.write_errors.inc();
        }
    }
}

/// How one disk lookup resolved: a usable artifact, a plain cold
/// miss, or a defective file that will be healed by recompute.
enum DiskRead<T> {
    Hit(T),
    Miss,
    Corrupt,
}

/// The span site for a pipeline stage's store lookup.
fn stage_site(stage: &str) -> &'static str {
    match stage {
        "ir" => sites::COMPILE_IR,
        "sched" => sites::COMPILE_SCHED,
        "char" => sites::COMPILE_CHAR,
        _ => sites::COMPILE_STORE,
    }
}

/// Parses and validates a disk envelope against the key it was looked
/// up under. `None` for any mismatch.
fn decode_envelope<T: Deserialize>(text: &str, key: ArtifactKey) -> Option<T> {
    let v: Value = serde_json::from_str(text).ok()?;
    let schema = u32::from_value(v.get("schema")?).ok()?;
    if schema != ARTIFACT_SCHEMA {
        return None;
    }
    let stage = String::from_value(v.get("stage")?).ok()?;
    let hash = String::from_value(v.get("key")?).ok()?;
    if stage != key.stage || hash != hash_hex(key.hash) {
        return None;
    }
    T::from_value(v.get("payload")?).ok()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qods_store_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const KEY: ArtifactKey = ArtifactKey {
        stage: "ir",
        hash: 0xdead_beef_0123_4567,
    };

    #[test]
    fn memory_tier_shares_one_arc() {
        let store = ArtifactStore::in_memory();
        let a: Arc<String> = store.get_or_compute(KEY, || "artifact".to_string());
        let b: Arc<String> = store.get_or_compute(KEY, || panic!("must be cached"));
        assert!(Arc::ptr_eq(&a, &b));
        let s = store.stats();
        assert_eq!((s.computed, s.mem_hits, s.disk_hits), (1, 1, 0));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn disk_tier_survives_a_fresh_store() {
        let dir = temp_store_dir("persist");
        let cold = ArtifactStore::persistent(&dir);
        let a: Arc<String> = cold.get_or_compute(KEY, || "persisted".to_string());
        assert_eq!(cold.stats().computed, 1);
        assert!(dir.join(KEY.file_name()).is_file());

        // A fresh store (fresh memory tier) over the same directory
        // serves the artifact from disk without recomputing.
        let warm = ArtifactStore::persistent(&dir);
        let b: Arc<String> = warm.get_or_compute(KEY, || panic!("warm disk must hit"));
        assert_eq!(*a, *b);
        let s = warm.stats();
        assert_eq!((s.computed, s.disk_hits), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_stale_files_are_recomputed_not_fatal() {
        let dir = temp_store_dir("corrupt");
        let path = dir.join(KEY.file_name());
        std::fs::create_dir_all(&dir).expect("mkdir");

        // Garbage bytes.
        std::fs::write(&path, b"{not json").expect("write");
        let store = ArtifactStore::persistent(&dir);
        let a: Arc<u64> = store.get_or_compute(KEY, || 42);
        assert_eq!(*a, 42);
        assert_eq!(store.stats().corrupt_reads, 1);
        assert_eq!(store.stats().computed, 1);
        // The recompute rewrote a valid file.
        let fixed = ArtifactStore::persistent(&dir);
        let b: Arc<u64> = fixed.get_or_compute(KEY, || panic!("rewritten file must hit"));
        assert_eq!(*b, 42);

        // Stale schema: valid JSON, wrong version.
        let stale =
            ArtifactStore::encode_artifact(KEY, &7u64).replace("\"schema\":1", "\"schema\":0");
        std::fs::write(&path, stale).expect("write");
        let store = ArtifactStore::persistent(&dir);
        let c: Arc<u64> = store.get_or_compute(KEY, || 42);
        assert_eq!(*c, 42);
        assert_eq!(store.stats().corrupt_reads, 1);

        // Wrong payload type for the key.
        std::fs::write(
            &path,
            ArtifactStore::encode_artifact(KEY, &"a string".to_string()),
        )
        .expect("write");
        let store = ArtifactStore::persistent(&dir);
        let d: Arc<u64> = store.get_or_compute(KEY, || 42);
        assert_eq!(*d, 42);
        assert_eq!(store.stats().corrupt_reads, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encode_is_deterministic_bytes() {
        let x = ArtifactStore::encode_artifact(KEY, &"payload".to_string());
        let y = ArtifactStore::encode_artifact(KEY, &"payload".to_string());
        assert_eq!(x, y);
        assert!(x.contains("\"schema\":1"));
        assert!(x.contains("\"stage\":\"ir\""));
    }

    #[test]
    fn missing_file_is_a_plain_miss() {
        let dir = temp_store_dir("miss");
        let store = ArtifactStore::persistent(&dir);
        let _: Arc<u64> = store.get_or_compute(KEY, || 1);
        assert_eq!(store.stats().corrupt_reads, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
