//! Stable content hashing: FNV-1a (64-bit) over canonical JSON.
//!
//! This is the one hashing primitive every content-addressed cache in
//! the workspace uses — the artifact store here and the
//! `qods-service` request cache (whose `config_hash` delegates to
//! [`fnv1a`]). Canonical form means *fixed field order, every
//! semantic field present*: callers build a [`serde::Value`] with the
//! fields in declaration order and hash [`canonical_json`] of it.
//! FNV-1a is stable across runs, platforms, and compiler versions, so
//! the hashes are safe to persist in file names and compare across
//! processes.

use serde::{Serialize, Value};

/// FNV-1a, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical JSON encoding of a value tree (the shim serializer
/// is deterministic and preserves object field order, so a value
/// built in fixed field order *is* canonical).
pub fn canonical_json(v: &Value) -> String {
    serde_json::to_string(v)
        .unwrap_or_else(|e| unreachable!("canonical encoding is always finite: {e}"))
}

/// Hashes any serializable value through its canonical JSON.
pub fn hash_value<T: Serialize>(value: &T) -> u64 {
    fnv1a(canonical_json(&value.to_value()).as_bytes())
}

/// Formats a content hash the way file names, responses, and logs
/// print it: 16 lowercase hex digits.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hash_hex_is_sixteen_digits() {
        let h = hash_hex(fnv1a(b"speed of data"));
        assert_eq!(h.len(), 16);
        assert!(h.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn hash_value_is_field_order_sensitive_by_design() {
        // Canonical form is the *caller's* fixed field order; two
        // different orders are two different encodings. Key builders
        // therefore always construct fields in declaration order.
        let a = Value::Object(vec![
            ("x".to_string(), Value::Int(1)),
            ("y".to_string(), Value::Int(2)),
        ]);
        let b = Value::Object(vec![
            ("y".to_string(), Value::Int(2)),
            ("x".to_string(), Value::Int(1)),
        ]);
        assert_ne!(hash_value(&a), hash_value(&b));
        assert_eq!(hash_value(&a), hash_value(&a.clone()));
    }
}
