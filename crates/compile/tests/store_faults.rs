//! Fault-injection coverage for the artifact store's I/O seams: every
//! injected defect (failed write, torn write, failed read, corrupted
//! read) costs at most a recompute — never a crash, never a wrong
//! artifact. Lives in its own integration binary because the injector
//! is process-global.

use qods_compile::store::{ArtifactKey, ArtifactStore};
use qods_fault::{FaultAction, FaultPlan};
use std::path::PathBuf;
use std::sync::Arc;
use std::sync::Mutex;

/// Serializes the tests in this file: one armed plan at a time.
static ARM_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    ARM_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qods_fault_store_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const KEY: ArtifactKey = ArtifactKey {
    stage: "ir",
    hash: 0x0123_4567_89ab_cdef,
};

#[test]
fn failed_writes_leave_the_store_memory_only_for_that_artifact() {
    let _x = exclusive();
    let dir = temp_dir("enospc");
    qods_fault::arm(FaultPlan::new().once("store.write", 1, FaultAction::IoError));
    let store = ArtifactStore::persistent(&dir);
    let a: Arc<u64> = store.get_or_compute(KEY, || 42);
    assert_eq!(*a, 42, "the artifact itself is unaffected");
    assert_eq!(store.stats().write_errors, 1);
    assert!(
        !dir.join(KEY.file_name()).exists(),
        "ENOSPC-style failure writes nothing"
    );
    // The memory tier still serves it.
    let b: Arc<u64> = store.get_or_compute(KEY, || panic!("memory tier must hit"));
    assert_eq!(*b, 42);
    qods_fault::disarm();
    // A later cold store recomputes (the disk file never landed) and
    // heals the disk tier.
    let cold = ArtifactStore::persistent(&dir);
    let c: Arc<u64> = cold.get_or_compute(KEY, || 42);
    assert_eq!(*c, 42);
    assert!(dir.join(KEY.file_name()).is_file(), "healed after disarm");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_writes_are_healed_by_the_corruption_tolerant_read() {
    let _x = exclusive();
    let dir = temp_dir("torn");
    qods_fault::arm(FaultPlan::new().once("store.write", 1, FaultAction::TornWrite));
    let store = ArtifactStore::persistent(&dir);
    let a: Arc<u64> = store.get_or_compute(KEY, || 7);
    assert_eq!(*a, 7);
    assert_eq!(store.stats().write_errors, 1);
    let torn = std::fs::read_to_string(dir.join(KEY.file_name())).expect("torn file exists");
    assert!(
        serde_json::from_str::<serde_json::Value>(&torn).is_err(),
        "the landed file really is torn: {torn}"
    );
    qods_fault::disarm();
    // A cold store over the torn file: corrupt read, recompute, and
    // the rewrite repairs the file.
    let cold = ArtifactStore::persistent(&dir);
    let b: Arc<u64> = cold.get_or_compute(KEY, || 7);
    assert_eq!(*b, 7);
    let stats = cold.stats();
    assert_eq!(
        (stats.corrupt_reads, stats.computed),
        (1, 1),
        "torn file is a tolerated corrupt read"
    );
    let healed = ArtifactStore::persistent(&dir);
    let c: Arc<u64> = healed.get_or_compute(KEY, || panic!("repaired file must hit"));
    assert_eq!(*c, 7);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_read_faults_cost_a_recompute_never_a_wrong_answer() {
    let _x = exclusive();
    let dir = temp_dir("read");
    // Seed a valid artifact with no faults armed.
    qods_fault::disarm();
    let seed_store = ArtifactStore::persistent(&dir);
    let _: Arc<u64> = seed_store.get_or_compute(KEY, || 99);

    // Fault read 1 with an I/O error and read 2 with corruption;
    // read 3 is clean.
    qods_fault::arm(
        FaultPlan::new()
            .once("store.read", 1, FaultAction::IoError)
            .once("store.read", 2, FaultAction::CorruptRead),
    );
    for expected_corrupt in [1, 1, 0] {
        let store = ArtifactStore::persistent(&dir);
        let v: Arc<u64> = store.get_or_compute(KEY, || 99);
        assert_eq!(*v, 99, "faulted reads never surface a wrong artifact");
        assert_eq!(store.stats().corrupt_reads, expected_corrupt);
    }
    assert_eq!(qods_fault::fired_at("store.read"), 2);
    qods_fault::disarm();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scattered_store_faults_heal_to_a_correct_store() {
    let _x = exclusive();
    let dir = temp_dir("scatter");
    // 8 faults scattered over the first 20 writes and 20 reads,
    // deterministically from a seed.
    qods_fault::arm(
        FaultPlan::new()
            .scatter("store.write", FaultAction::IoError, 11, 4, 20)
            .scatter("store.read", FaultAction::CorruptRead, 13, 4, 20),
    );
    // 20 distinct artifacts through a cold store, then a warm pass.
    let store = ArtifactStore::persistent(&dir);
    for round in 0..2 {
        let probe = ArtifactStore::persistent(&dir);
        for i in 0..10u64 {
            let key = ArtifactKey {
                stage: "ir",
                hash: i,
            };
            let v: Arc<u64> = if round == 0 {
                store.get_or_compute(key, || i * i)
            } else {
                probe.get_or_compute(key, || i * i)
            };
            assert_eq!(*v, i * i, "round {round}, artifact {i}");
        }
    }
    assert!(qods_fault::fired_total() >= 1, "the scatter plan fired");
    qods_fault::disarm();
    // Faultless final pass: everything heals to a correct store.
    let final_store = ArtifactStore::persistent(&dir);
    for i in 0..10u64 {
        let key = ArtifactKey {
            stage: "ir",
            hash: i,
        };
        let v: Arc<u64> = final_store.get_or_compute(key, || i * i);
        assert_eq!(*v, i * i);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
