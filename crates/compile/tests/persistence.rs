//! Integration tests for the persistent artifact store: byte-identity
//! between disk-cached and freshly compiled artifacts, cold-process
//! reuse, corruption tolerance, and cache-state-invariant results.

use proptest::prelude::*;
use qods_compile::{ArtifactStore, Compiler, SynthBudget};
use qods_kernels::{KernelFamily, KernelSpec};
use std::path::PathBuf;
use std::sync::Arc;

fn budget() -> SynthBudget {
    SynthBudget {
        max_t: 6,
        target_distance: 5e-2,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qods_persist_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random specs, the bytes the disk store holds are exactly
    /// the bytes a fresh, store-free compilation would encode to —
    /// the "disk-cached vs freshly compiled artifacts are
    /// byte-identical" contract.
    #[test]
    fn disk_artifacts_are_byte_identical_to_fresh_compiles(width in 1usize..14, fi in 0usize..5) {
        let spec = KernelSpec::new(KernelFamily::ALL[fi], width).expect("valid");
        let dir = temp_dir("bytes");

        // Compile through a persistent store.
        let disk = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
        disk.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;

        // Compile the same spec in a fresh, memory-only store.
        let fresh = Compiler::new(Arc::new(ArtifactStore::in_memory()), budget());
        let kernel = fresh.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;

        for (key, encoded) in [
            (fresh.ir_key(spec), ArtifactStore::encode_artifact(fresh.ir_key(spec), kernel.ir.as_ref())),
            (fresh.scheduled_key(spec), ArtifactStore::encode_artifact(fresh.scheduled_key(spec), kernel.scheduled.as_ref())),
            (fresh.characterization_key(spec), ArtifactStore::encode_artifact(fresh.characterization_key(spec), kernel.characterization.as_ref())),
        ] {
            let on_disk = std::fs::read_to_string(dir.join(key.file_name()))
                .map_err(|e| TestCaseError::fail(format!("{key}: {e}")))?;
            prop_assert_eq!(&on_disk, &encoded, "{} bytes differ", key);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Results are bit-identical at any cache state: cold memory,
    /// warm memory, warm disk, and corrupted disk all produce the
    /// same characterization.
    #[test]
    fn any_cache_state_yields_identical_results(width in 1usize..14, fi in 0usize..5) {
        let spec = KernelSpec::new(KernelFamily::ALL[fi], width).expect("valid");
        let dir = temp_dir("states");

        let cold = Compiler::new(Arc::new(ArtifactStore::in_memory()), budget());
        let want = cold.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;

        let persist = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
        let a = persist.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(&*a.characterization, &*want.characterization);

        // Fresh process simulation: new store, warm disk, no compute.
        let warm = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
        let b = warm.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(warm.store().stats().computed, 0);
        prop_assert_eq!(&*b.characterization, &*want.characterization);

        // Corrupt every artifact file: still the same answer, by
        // recompute, and the files are healed for the next reader.
        for entry in std::fs::read_dir(&dir).map_err(|e| TestCaseError::fail(e.to_string()))? {
            let path = entry.map_err(|e| TestCaseError::fail(e.to_string()))?.path();
            std::fs::write(&path, b"{corrupt").map_err(|e| TestCaseError::fail(e.to_string()))?;
        }
        let healed = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
        let c = healed.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(healed.store().stats().corrupt_reads > 0);
        prop_assert_eq!(&*c.characterization, &*want.characterization);
        let reread = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
        let d = reread.compile(spec).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(reread.store().stats().computed, 0, "healed files must serve");
        prop_assert_eq!(&*d.characterization, &*want.characterization);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A cold-process, warm-disk study context materializes its
/// benchmarks with zero stage recomputes — the end-to-end shape the
/// CI cache-persistence job asserts through `repro`.
#[test]
fn warm_disk_serves_a_fresh_process_without_recompiling() {
    let dir = temp_dir("coldproc");
    let specs = qods_compile::paper_specs(6);

    let first = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
    let a = first.compile_many(&specs, 2).expect("valid specs");
    assert!(first.store().stats().computed > 0);

    let second = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget());
    let b = second.compile_many(&specs, 2).expect("valid specs");
    let stats = second.store().stats();
    assert_eq!(stats.computed, 0, "warm disk must serve everything");
    assert!(stats.disk_hits > 0);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(*x.characterization, *y.characterization);
        assert_eq!(x.scheduled.circuit, y.scheduled.circuit);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The environment variable relocates the disk tier (the CI/sandbox
/// override), and an empty value disables it. The location policy is
/// a pure function (`ArtifactStore::resolve`) precisely so this test
/// never has to call `set_var` — mutating the process environment
/// races the parallel test harness's own `getenv` calls.
#[test]
fn env_var_overrides_the_store_location() {
    let dir = temp_dir("envvar");
    let env_dir = temp_dir("envvar_override");

    // No env: the default dir (or memory-only without one) applies.
    let store = ArtifactStore::resolve(None, Some(&dir));
    assert_eq!(store.dir(), Some(dir.as_path()));
    assert_eq!(ArtifactStore::resolve(None, None).dir(), None);

    // Env set: it beats the default dir.
    let store = ArtifactStore::resolve(env_dir.to_str(), Some(&dir));
    assert_eq!(store.dir(), Some(env_dir.as_path()));

    // Empty env value: disk tier off even with a default dir.
    assert_eq!(ArtifactStore::resolve(Some(""), Some(&dir)).dir(), None);

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&env_dir);
}
