//! Observability for the qods serving stack: end-to-end structured
//! request tracing, the unified metrics registry, and exporters for
//! the Chrome trace-event format and NDJSON (DESIGN.md §13).
//!
//! Three pieces, one crate:
//!
//! * [`trace`] — RAII span guards around a process-wide [`Tracer`].
//!   Span/parent ids are counter-derived (never the clock) so span
//!   *trees* are deterministic; timestamps are telemetry only. Off by
//!   default: a disabled span is one relaxed atomic load. Enabled,
//!   events land in bounded shards via `try_lock` — a full or
//!   contended shard drops (and counts) rather than blocking the
//!   serving path.
//! * [`metrics`] — typed [`Counter`]/[`Gauge`]/histogram handles
//!   registered by static site name in a [`Registry`], replacing the
//!   ad-hoc atomics that used to live on each serving struct; one
//!   serde [`MetricsSnapshot`] feeds the `stats` and `metrics` verbs
//!   and the bench reports.
//! * [`export`] — [`export::to_chrome`] (Perfetto-loadable, worker
//!   lanes named), [`export::to_ndjson`], and
//!   [`export::stage_breakdown`] for `repro --load`'s stage table.
//!
//! Site names are the contract: every span and metric site is a
//! constant in [`sites`], and lint rule O1 checks instrumentation
//! literals against [`sites::ALL`] so the table can't drift.
//!
//! This crate is dependency-free by design (serde shims only) and
//! sits below every serving crate; like `qods-fault`, it must never
//! change what the system computes — only what it reports.

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod export;
pub mod hist;
pub mod metrics;
pub mod sites;
pub mod trace;

pub use hist::{LatencyHistogram, LatencySummary, SUBBUCKETS};
pub use metrics::{Counter, Gauge, MetricsSnapshot, Registry, RobustnessSnapshot};
pub use trace::{SpanGuard, TraceStats, Tracer};

/// Opens a span at a site from [`sites`], optionally with structured
/// args, returning a [`SpanGuard`] that records on drop:
///
/// ```
/// use qods_obs::{span, sites};
/// let _request = span!(sites::NET_REQUEST);
/// let _sched = span!(sites::SVC_SCHEDULE, { config_hash: 0xabcd, role: "leader" });
/// ```
///
/// Field names map to [`SpanGuard`] builders: `cache` and `role` take
/// `&'static str`, `config_hash` a `u64`, `detail` any `&str`, and
/// `child_of` an explicit parent span id for cross-thread linking.
/// While tracing is disabled the expansion costs one relaxed load.
#[macro_export]
macro_rules! span {
    ($site:expr) => {
        $crate::trace::span($site)
    };
    ($site:expr, { $($field:ident : $value:expr),+ $(,)? }) => {
        $crate::trace::span($site)$(.$field($value))+
    };
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::trace::{self, tests::TEST_GUARD};
    use crate::{sites, Registry};
    use std::sync::PoisonError;

    #[test]
    fn span_macro_builds_args() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        trace::disable();
        let _ = trace::tracer().drain();
        trace::enable();
        {
            let _plain = span!(sites::NET_READ);
            let _rich = span!(sites::SVC_COALESCE, {
                role: "follower",
                config_hash: 7,
                detail: "j-42",
            });
        }
        trace::disable();
        let events = trace::tracer().drain();
        let rich = events
            .iter()
            .find(|e| e.site == sites::SVC_COALESCE)
            .expect("coalesce span recorded");
        assert_eq!(rich.args.role, Some("follower"));
        assert_eq!(rich.args.config_hash, Some(7));
        assert_eq!(rich.args.detail.as_deref(), Some("j-42"));
        assert!(events.iter().any(|e| e.site == sites::NET_READ));
    }

    #[test]
    fn registry_and_tracer_compose_into_one_snapshot() {
        let _g = TEST_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        trace::disable();
        let _ = trace::tracer().drain();
        let r = Registry::new();
        r.counter(sites::NET_REQUESTS).inc();
        let snap = r.snapshot();
        assert_eq!(snap.counters["net.requests"], 1);
        assert_eq!(snap.trace.buffered, 0);
    }
}
