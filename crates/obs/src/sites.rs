//! The canonical site-name table: every span a guard can open and
//! every metric a registry handle can register lives here, as a
//! `&'static str` constant plus the [`ALL`] slice lint rule **O1**
//! validates instrumentation literals against — the same can't-drift
//! contract `qods_fault::SITES` gives fault-injection points.
//!
//! Naming is `<layer>.<thing>`: `net.*` for the wire/connection
//! layer, `gate.*` for admission, `svc.*` for the scheduler,
//! `cache.*` for the context pool, `store.*` for the artifact store,
//! `compile.*` for the pipeline stages, `pool.*` for the worker pool,
//! `job.*` for per-request execution, and `fault.*`/`trace.*` for the
//! observability plumbing itself.

// ------------------------------------------------------------ spans

/// One accepted TCP connection, open for its whole lifetime.
pub const NET_ACCEPT: &str = "net.accept";
/// Reading one NDJSON line off a transport.
pub const NET_READ: &str = "net.read";
/// Waiting on (or being refused by) the admission gate.
pub const NET_ADMISSION: &str = "net.admission";
/// Writing one answer line back to the transport.
pub const NET_WRITE: &str = "net.write";
/// One request end to end: parse -> admit -> run -> answer.
pub const NET_REQUEST: &str = "net.request";

/// The coalescing decision for one admitted job (role: leader or
/// follower).
pub const SVC_COALESCE: &str = "svc.coalesce";
/// One scheduled job execution (the leader's run).
pub const SVC_SCHEDULE: &str = "svc.schedule";
/// Context checkout from the content-addressed pool.
pub const SVC_CONTEXT: &str = "svc.context";

/// Compile stage 1: spec -> IR.
pub const COMPILE_IR: &str = "compile.ir";
/// Compile stage 2: IR -> scheduled circuit.
pub const COMPILE_SCHED: &str = "compile.sched";
/// Compile stage 3: scheduled circuit -> characterization.
pub const COMPILE_CHAR: &str = "compile.char";
/// Compile stage 4: the persistence tier (disk read/heal/write).
pub const COMPILE_STORE: &str = "compile.store";

/// One worker's whole chunk-execution loop inside the shared pool.
pub const POOL_WORKER: &str = "pool.worker";

/// One experiment run (the phys/arch engines) inside a job.
pub const JOB_EXPERIMENT: &str = "job.experiment";

/// A fault-injection site fired (instant event; detail = fault site).
pub const FAULT_FIRED: &str = "fault.fired";

// ---------------------------------------------------------- metrics

/// Job lines received (the `stats` verb's `requests`).
pub const NET_REQUESTS: &str = "net.requests";
/// Result lines answered.
pub const NET_RESULTS: &str = "net.results";
/// Typed error lines answered.
pub const NET_ERRORS: &str = "net.errors";
/// Jobs refused by admission (queue full).
pub const NET_OVERLOADED: &str = "net.overloaded";
/// Connections open right now (gauge).
pub const NET_CONNECTIONS: &str = "net.connections";
/// Connections accepted over the server's lifetime.
pub const NET_CONNECTIONS_TOTAL: &str = "net.connections_total";
/// NDJSON lines rejected for exceeding the line cap.
pub const NET_LINES_REJECTED: &str = "net.lines_rejected";
/// Idle connections reaped by the read timeout.
pub const NET_IDLE_REAPED: &str = "net.idle_reaped";
/// Client-observed queue-to-answer latency (histogram).
pub const NET_LATENCY: &str = "net.latency";

/// Admission permits out right now (gauge).
pub const GATE_ACTIVE: &str = "gate.active";
/// Callers blocked in the admission wait queue right now (gauge).
pub const GATE_WAITING: &str = "gate.waiting";

/// Jobs this scheduler executed (coalescing leaders included).
pub const SVC_EXECUTED: &str = "svc.executed";
/// Requests answered by joining an in-flight execution.
pub const SVC_COALESCED: &str = "svc.coalesced";
/// Jobs coalescing-in-flight right now (gauge).
pub const SVC_IN_FLIGHT: &str = "svc.in_flight";
/// Job panics caught and answered as typed errors.
pub const SVC_PANICS_CAUGHT: &str = "svc.panics_caught";
/// Jobs cancelled at a deadline boundary.
pub const SVC_DEADLINE_EXCEEDED: &str = "svc.deadline_exceeded";

/// Context-pool hits (same config hash, context reused).
pub const CACHE_CONTEXT_HITS: &str = "cache.context_hits";
/// Context-pool misses (context built fresh).
pub const CACHE_CONTEXT_MISSES: &str = "cache.context_misses";
/// Finished-output hits (experiment served without recompute).
pub const CACHE_OUTPUT_HITS: &str = "cache.output_hits";
/// Finished-output misses (experiment executed).
pub const CACHE_OUTPUT_MISSES: &str = "cache.output_misses";

/// Artifact-store stage computations (both tiers missed).
pub const STORE_COMPUTED: &str = "store.computed";
/// Artifact-store in-memory hits.
pub const STORE_MEM_HITS: &str = "store.mem_hits";
/// Artifact-store disk deserialization hits.
pub const STORE_DISK_HITS: &str = "store.disk_hits";
/// Corrupt/mismatched disk envelopes healed by recomputing.
pub const STORE_CORRUPT_READS: &str = "store.corrupt_reads";
/// Disk write failures (artifact served from memory anyway).
pub const STORE_WRITE_ERRORS: &str = "store.write_errors";

/// Worker threads spawned by the shared pool.
pub const POOL_WORKERS_SPAWNED: &str = "pool.workers_spawned";

/// Faults fired by the armed plan.
pub const FAULT_FIRED_TOTAL: &str = "fault.fired_total";

/// Every valid site name, sorted — what lint rule O1 and
/// [`crate::metrics::Registry`] debug assertions validate against.
pub const ALL: &[&str] = &[
    CACHE_CONTEXT_HITS,
    CACHE_CONTEXT_MISSES,
    CACHE_OUTPUT_HITS,
    CACHE_OUTPUT_MISSES,
    COMPILE_CHAR,
    COMPILE_IR,
    COMPILE_SCHED,
    COMPILE_STORE,
    FAULT_FIRED,
    FAULT_FIRED_TOTAL,
    GATE_ACTIVE,
    GATE_WAITING,
    JOB_EXPERIMENT,
    NET_ACCEPT,
    NET_ADMISSION,
    NET_CONNECTIONS,
    NET_CONNECTIONS_TOTAL,
    NET_ERRORS,
    NET_IDLE_REAPED,
    NET_LATENCY,
    NET_LINES_REJECTED,
    NET_OVERLOADED,
    NET_READ,
    NET_REQUEST,
    NET_REQUESTS,
    NET_RESULTS,
    NET_WRITE,
    POOL_WORKER,
    POOL_WORKERS_SPAWNED,
    STORE_COMPUTED,
    STORE_CORRUPT_READS,
    STORE_DISK_HITS,
    STORE_MEM_HITS,
    STORE_WRITE_ERRORS,
    SVC_COALESCE,
    SVC_COALESCED,
    SVC_CONTEXT,
    SVC_DEADLINE_EXCEEDED,
    SVC_EXECUTED,
    SVC_IN_FLIGHT,
    SVC_PANICS_CAUGHT,
    SVC_SCHEDULE,
];

/// Whether `name` is a canonical site.
pub fn is_site(name: &str) -> bool {
    ALL.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_unique_and_well_formed() {
        assert!(ALL.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        for s in ALL {
            assert!(
                s.bytes().all(|b| b.is_ascii_lowercase()
                    || b.is_ascii_digit()
                    || b == b'.'
                    || b == b'_'),
                "site `{s}` must be lowercase dotted"
            );
            assert!(s.contains('.'), "site `{s}` must be layer-qualified");
            assert!(is_site(s));
        }
        assert!(!is_site("net.acept"));
        assert!(!is_site(""));
    }
}
