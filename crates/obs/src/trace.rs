//! Structured tracing for the serving path: RAII span guards around a
//! process-wide [`Tracer`], off by default and armed per process via
//! `--trace-out` / the `QODS_TRACE` environment variable.
//!
//! ## Determinism boundary
//!
//! Span and parent ids come from one process-wide atomic counter —
//! **never** from the clock — so the span *tree* (who nested under
//! whom, with which args) is a pure function of the request stream.
//! Timestamps and durations are telemetry only: they decorate the
//! tree for profile viewers and never flow into a result line, which
//! is why this crate is the lint's sanctioned wall-clock home
//! alongside qods-bench (DESIGN.md §13).
//!
//! ## Never block the serving path
//!
//! * Disabled (the default): opening a span is **one relaxed atomic
//!   load** and nothing else — no allocation, no TLS touch.
//! * Enabled: events land in a fixed set of bounded shards through
//!   `try_lock`. A contended or full shard **drops the event and
//!   counts the drop** ([`Tracer::dropped`]) instead of waiting;
//!   tracing may lose telemetry under pressure but can never add a
//!   blocking edge to the code it observes.
//!
//! Guards are `!Send`: a span closes on the thread that opened it, so
//! per-thread guard stacks give every event a well-formed parent.
//! Work handed to another thread (a pool worker) links its spans to
//! the scheduling span explicitly via [`SpanGuard::child_of`] /
//! [`current_span`].

use crate::sites;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Poison-tolerant lock (local twin of `qods_pool::plock`; this crate
/// sits below the pool and cannot depend on it).
fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Default event capacity of the process tracer (per process, across
/// all shards).
pub const DEFAULT_CAPACITY: usize = 1 << 16;
/// Buffer shards; writers `try_lock` the shard their span id maps to.
const SHARDS: usize = 64;

/// The lane non-worker threads start from (pool workers take
/// 1..=threads via [`set_lane`]; the stdio/accept thread is lane 0).
pub const FIRST_DYNAMIC_LANE: u32 = 1_000;

/// How one event renders (`ph` in the Chrome trace format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A duration span (`ph: "X"`).
    Span,
    /// A point-in-time event (`ph: "i"`), e.g. a fault firing.
    Instant,
}

/// Structured arguments attached to a span (the Chrome `args` block).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanArgs {
    /// Cache outcome at this site (`"mem"`, `"disk"`, `"computed"`,
    /// `"healed"`, `"hit"`, `"miss"`).
    pub cache: Option<&'static str>,
    /// Coalescing role (`"leader"` / `"follower"`).
    pub role: Option<&'static str>,
    /// The job's canonical config hash.
    pub config_hash: Option<u64>,
    /// Free-form detail (experiment id, fault site, error kind).
    pub detail: Option<String>,
}

impl SpanArgs {
    /// Whether no argument is set.
    pub fn is_empty(&self) -> bool {
        self.cache.is_none()
            && self.role.is_none()
            && self.config_hash.is_none()
            && self.detail.is_none()
    }
}

/// One finished span or instant event, as drained from the buffer.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// This span's id (unique per process run, counter-derived).
    pub span_id: u64,
    /// The enclosing span's id; 0 for a root.
    pub parent_id: u64,
    /// Site name (must be in [`crate::sites::ALL`]).
    pub site: &'static str,
    /// Thread lane (pool worker index + 1; 0 = main; ≥ 1000 other).
    pub lane: u32,
    /// Start offset from the tracer epoch, nanoseconds (telemetry
    /// only — never feeds a result).
    pub start_ns: u64,
    /// Duration, nanoseconds (0 for instants; telemetry only).
    pub dur_ns: u64,
    /// Span vs instant.
    pub phase: Phase,
    /// Structured args.
    pub args: SpanArgs,
}

/// Buffer occupancy + drop accounting, serialized into the metrics
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Events currently buffered (drained by the exporter).
    pub buffered: u64,
    /// Events dropped because their shard was full or contended.
    pub dropped: u64,
}

/// The process-wide span collector (see module docs).
#[derive(Debug)]
pub struct Tracer {
    next_id: AtomicU64,
    dropped: AtomicU64,
    epoch: Instant,
    shards: Vec<Mutex<Vec<SpanEvent>>>,
    shard_cap: usize,
}

/// The disabled fast path: one relaxed load, checked before any other
/// tracer state is touched.
static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACER: OnceLock<Tracer> = OnceLock::new();
/// Lane ids handed to threads that never called [`set_lane`].
static NEXT_DYNAMIC_LANE: AtomicU32 = AtomicU32::new(FIRST_DYNAMIC_LANE);

thread_local! {
    /// This thread's lane (u32::MAX = unassigned).
    static LANE: Cell<u32> = const { Cell::new(u32::MAX) };
    /// Open span ids on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

impl Tracer {
    /// A tracer buffering at most `capacity` events.
    fn with_capacity(capacity: usize) -> Self {
        let shard_cap = (capacity / SHARDS).max(1);
        Tracer {
            next_id: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            // The tracer epoch. Span timestamps are telemetry-only by
            // the §13 contract (qods-obs is D1-exempt as a crate: no
            // result bytes ever derive from them).
            epoch: Instant::now(),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            shard_cap,
        }
    }

    fn next_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Buffers one event without blocking: a contended or full shard
    /// drops it and bumps the drop counter.
    fn record(&self, ev: SpanEvent) {
        let shard = &self.shards[(ev.span_id as usize) % SHARDS];
        match shard.try_lock() {
            Ok(mut slot) => {
                if slot.len() < self.shard_cap {
                    if slot.capacity() == 0 {
                        slot.reserve_exact(self.shard_cap);
                    }
                    slot.push(ev);
                } else {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Takes every buffered event, ordered by (start, id). Meant for
    /// exporters after the serving path has quiesced; events recorded
    /// concurrently with a drain land in the next drain.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.append(&mut plock(shard));
        }
        out.sort_by_key(|e| (e.start_ns, e.span_id));
        out
    }

    /// Events dropped so far (full or contended shards).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events buffered right now.
    pub fn buffered(&self) -> u64 {
        self.shards.iter().map(|s| plock(s).len() as u64).sum()
    }

    /// Occupancy + drop snapshot.
    pub fn stats(&self) -> TraceStats {
        TraceStats {
            buffered: self.buffered(),
            dropped: self.dropped(),
        }
    }
}

/// The process tracer (created on first use, [`DEFAULT_CAPACITY`]).
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| Tracer::with_capacity(DEFAULT_CAPACITY))
}

/// Whether tracing is armed — the serving path's fast-path check.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arms tracing process-wide.
pub fn enable() {
    let _ = tracer(); // materialize before the first span races in
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarms tracing (buffered events stay until drained).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Arms tracing when `QODS_TRACE` is set and nonempty, mirroring
/// `qods_fault::arm_from_env`. Returns the output path when the value
/// names one (any value other than `1`), so binaries know where to
/// flush on shutdown; `QODS_TRACE=1` arms buffering without a file
/// (the `metrics` verb still reports occupancy).
pub fn arm_from_env() -> Option<String> {
    let value = std::env::var("QODS_TRACE").ok()?;
    if value.is_empty() {
        return None;
    }
    enable();
    (value != "1").then_some(value)
}

/// Assigns this thread's lane (Chrome `tid`). Pool workers call this
/// with `worker index + 1`; lane 0 is the main/stdio thread.
pub fn set_lane(lane: u32) {
    LANE.with(|l| l.set(lane));
}

/// This thread's lane, assigning a fresh dynamic lane (≥ 1000) on
/// first use by a thread that never called [`set_lane`].
pub fn lane() -> u32 {
    LANE.with(|l| {
        let v = l.get();
        if v != u32::MAX {
            return v;
        }
        let fresh = NEXT_DYNAMIC_LANE.fetch_add(1, Ordering::Relaxed);
        l.set(fresh);
        fresh
    })
}

/// The innermost open span on this thread (0 when none) — pass to
/// [`SpanGuard::child_of`] when handing work to another thread.
pub fn current_span() -> u64 {
    if !enabled() {
        return 0;
    }
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Opens a span at `site`. Prefer the [`crate::span!`] macro, which
/// also sets args.
pub fn span(site: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            live: None,
            _not_send: PhantomData,
        };
    }
    let t = tracer();
    let span_id = t.next_id();
    let parent_id = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(span_id);
        parent
    });
    SpanGuard {
        live: Some(LiveSpan {
            span_id,
            parent_id,
            site,
            start_ns: t.now_ns(),
            args: SpanArgs::default(),
        }),
        _not_send: PhantomData,
    }
}

/// Records a point-in-time event (a fault firing, a shed request).
/// No-op (and no allocation) while disabled.
pub fn instant(site: &'static str, detail: &str) {
    if !enabled() {
        return;
    }
    let t = tracer();
    let span_id = t.next_id();
    t.record(SpanEvent {
        span_id,
        parent_id: current_span(),
        site,
        lane: lane(),
        start_ns: t.now_ns(),
        dur_ns: 0,
        phase: Phase::Instant,
        args: SpanArgs {
            detail: (!detail.is_empty()).then(|| detail.to_owned()),
            ..SpanArgs::default()
        },
    });
}

#[derive(Debug)]
struct LiveSpan {
    span_id: u64,
    parent_id: u64,
    site: &'static str,
    start_ns: u64,
    args: SpanArgs,
}

/// An open span: closes (records the event) on drop. `!Send` so the
/// per-thread guard stack always matches the nesting.
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<LiveSpan>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// This span's id (0 while tracing is disabled).
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.span_id)
    }

    /// Re-parents under an explicit span (cross-thread linking).
    #[must_use]
    pub fn child_of(mut self, parent: u64) -> Self {
        if let Some(l) = self.live.as_mut() {
            if parent != 0 {
                l.parent_id = parent;
            }
        }
        self
    }

    /// Sets the cache-outcome arg.
    #[must_use]
    pub fn cache(mut self, outcome: &'static str) -> Self {
        self.note_cache(outcome);
        self
    }

    /// Sets the coalescing-role arg.
    #[must_use]
    pub fn role(mut self, role: &'static str) -> Self {
        if let Some(l) = self.live.as_mut() {
            l.args.role = Some(role);
        }
        self
    }

    /// Sets the config-hash arg.
    #[must_use]
    pub fn config_hash(mut self, hash: u64) -> Self {
        if let Some(l) = self.live.as_mut() {
            l.args.config_hash = Some(hash);
        }
        self
    }

    /// Sets the free-form detail arg (allocates only while enabled).
    #[must_use]
    pub fn detail(mut self, detail: &str) -> Self {
        self.note_detail(detail);
        self
    }

    /// Sets the cache outcome after the fact (the outcome of a
    /// `get_or_compute` is known only once it returns).
    pub fn note_cache(&mut self, outcome: &'static str) {
        if let Some(l) = self.live.as_mut() {
            l.args.cache = Some(outcome);
        }
    }

    /// Sets the config-hash arg after the fact (the hash is often
    /// computed inside the span it describes).
    pub fn note_config_hash(&mut self, hash: u64) {
        if let Some(l) = self.live.as_mut() {
            l.args.config_hash = Some(hash);
        }
    }

    /// Sets the detail arg after the fact.
    pub fn note_detail(&mut self, detail: &str) {
        if let Some(l) = self.live.as_mut() {
            l.args.detail = Some(detail.to_owned());
        }
    }

    /// Abandons the span: pops the guard stack but records nothing.
    /// For speculative spans whose work turned out not to happen (an
    /// idle read tick, say) — recording those would drown the trace.
    pub fn cancel(mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            while let Some(top) = stack.pop() {
                if top == live.span_id {
                    break;
                }
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards close LIFO; pop defensively in case an unwind
            // skipped an inner guard's drop.
            while let Some(top) = stack.pop() {
                if top == live.span_id {
                    break;
                }
            }
        });
        let t = tracer();
        let end = t.now_ns();
        t.record(SpanEvent {
            span_id: live.span_id,
            parent_id: live.parent_id,
            site: live.site,
            lane: lane(),
            start_ns: live.start_ns,
            dur_ns: end.saturating_sub(live.start_ns),
            phase: Phase::Span,
            args: live.args,
        });
    }
}

/// Convenience: records a fault firing as an instant event (what
/// `qods_fault::check` calls on every fire).
pub fn fault_fired(fault_site: &str) {
    instant(sites::FAULT_FIRED, fault_site);
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub(crate) mod tests {
    use super::*;

    /// Global-tracer tests serialize on this lock: enable/disable and
    /// drain are process-wide.
    pub(crate) static TEST_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = plock(&TEST_GUARD);
        disable();
        let before = tracer().stats();
        {
            let _s = span(sites::NET_REQUEST);
            instant(sites::FAULT_FIRED, "store.read");
        }
        let after = tracer().stats();
        assert_eq!(before.buffered, after.buffered);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn nested_guards_parent_correctly_and_drain_clears() {
        let _g = plock(&TEST_GUARD);
        disable();
        let _ = tracer().drain();
        enable();
        let (outer_id, inner_id);
        {
            let outer = span(sites::NET_REQUEST);
            outer_id = outer.id();
            assert_eq!(current_span(), outer_id);
            {
                let inner = span(sites::SVC_SCHEDULE).config_hash(0xabcd);
                inner_id = inner.id();
                assert_eq!(current_span(), inner_id);
            }
            assert_eq!(current_span(), outer_id);
        }
        disable();
        let events = tracer().drain();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.span_id == inner_id).unwrap();
        let outer = events.iter().find(|e| e.span_id == outer_id).unwrap();
        assert_eq!(inner.parent_id, outer_id);
        assert_eq!(outer.parent_id, 0);
        assert_eq!(inner.args.config_hash, Some(0xabcd));
        assert_eq!(outer.phase, Phase::Span);
        assert!(tracer().drain().is_empty(), "drain clears the buffer");
    }

    #[test]
    fn instants_and_cross_thread_parents_link() {
        let _g = plock(&TEST_GUARD);
        disable();
        let _ = tracer().drain();
        enable();
        let root = span(sites::SVC_SCHEDULE);
        let root_id = root.id();
        let worker = std::thread::spawn(move || {
            set_lane(7);
            let _w = span(sites::POOL_WORKER).child_of(root_id);
            fault_fired("pool.worker");
        });
        worker.join().unwrap();
        drop(root);
        disable();
        let events = tracer().drain();
        let w = events
            .iter()
            .find(|e| e.site == sites::POOL_WORKER)
            .unwrap();
        assert_eq!(w.parent_id, root_id);
        assert_eq!(w.lane, 7);
        let f = events
            .iter()
            .find(|e| e.site == sites::FAULT_FIRED)
            .unwrap();
        assert_eq!(f.phase, Phase::Instant);
        assert_eq!(f.args.detail.as_deref(), Some("pool.worker"));
        assert_eq!(f.lane, 7);
    }

    #[test]
    fn full_buffer_drops_and_counts_instead_of_blocking() {
        let _g = plock(&TEST_GUARD);
        disable();
        let t = Tracer::with_capacity(SHARDS); // one event per shard
        for i in 0..(4 * SHARDS as u64) {
            t.record(SpanEvent {
                span_id: i + 1,
                parent_id: 0,
                site: sites::NET_READ,
                lane: 0,
                start_ns: i,
                dur_ns: 1,
                phase: Phase::Span,
                args: SpanArgs::default(),
            });
        }
        let stats = t.stats();
        assert_eq!(stats.buffered, SHARDS as u64);
        assert_eq!(stats.dropped, 3 * SHARDS as u64);
        assert_eq!(t.drain().len(), SHARDS);
    }
}
