//! Exporters for drained trace buffers: newline-delimited JSON (one
//! event per line, the grep-friendly form) and the Chrome trace-event
//! format (`chrome://tracing` / Perfetto-loadable), plus the per-stage
//! aggregation `repro --load` prints as a time breakdown.
//!
//! Chrome mapping: every event shares `pid` 1; `tid` is the span's
//! lane (0 = main thread, `1..=N` = pool workers, ≥ 1000 = other
//! threads), and `"M"` metadata events name each lane so Perfetto
//! shows `worker-3` instead of a bare number. Spans render as `"X"`
//! (complete) events with microsecond `ts`/`dur`; instants as `"i"`.
//! Structured args carry the span id/parent link, cache outcome,
//! coalescing role, config hash (hex), and detail.
//!
//! Exports are built from hand-assembled [`Value`] trees rather than
//! derived structs so absent args are *omitted*, not `null` — trace
//! viewers are picky about nulls.

use crate::trace::{Phase, SpanEvent, FIRST_DYNAMIC_LANE};
use serde_json::Value;
use std::collections::BTreeMap;

/// The `pid` every event carries (one process per trace file).
const PID: u64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn args_value(ev: &SpanEvent) -> Value {
    let mut fields = vec![
        ("span", Value::UInt(ev.span_id)),
        ("parent", Value::UInt(ev.parent_id)),
    ];
    if let Some(cache) = ev.args.cache {
        fields.push(("cache", Value::Str(cache.to_owned())));
    }
    if let Some(role) = ev.args.role {
        fields.push(("role", Value::Str(role.to_owned())));
    }
    if let Some(hash) = ev.args.config_hash {
        fields.push(("config_hash", Value::Str(format!("{hash:016x}"))));
    }
    if let Some(detail) = &ev.args.detail {
        fields.push(("detail", Value::Str(detail.clone())));
    }
    obj(fields)
}

/// A human-readable name for `lane` (the Chrome thread name).
pub fn lane_name(lane: u32) -> String {
    match lane {
        0 => "main".to_owned(),
        n if n < FIRST_DYNAMIC_LANE => format!("worker-{n}"),
        n => format!("thread-{n}"),
    }
}

/// Renders events as newline-delimited JSON, one object per event:
/// `{"site":…,"span":…,"parent":…,"lane":…,"start_ns":…,"dur_ns":…,
/// "phase":"span"|"instant", …args}`.
pub fn to_ndjson(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let mut fields = vec![
            ("site", Value::Str(ev.site.to_owned())),
            ("span", Value::UInt(ev.span_id)),
            ("parent", Value::UInt(ev.parent_id)),
            ("lane", Value::UInt(u64::from(ev.lane))),
            ("start_ns", Value::UInt(ev.start_ns)),
            ("dur_ns", Value::UInt(ev.dur_ns)),
            (
                "phase",
                Value::Str(
                    match ev.phase {
                        Phase::Span => "span",
                        Phase::Instant => "instant",
                    }
                    .to_owned(),
                ),
            ),
        ];
        if let Some(cache) = ev.args.cache {
            fields.push(("cache", Value::Str(cache.to_owned())));
        }
        if let Some(role) = ev.args.role {
            fields.push(("role", Value::Str(role.to_owned())));
        }
        if let Some(hash) = ev.args.config_hash {
            fields.push(("config_hash", Value::Str(format!("{hash:016x}"))));
        }
        if let Some(detail) = &ev.args.detail {
            fields.push(("detail", Value::Str(detail.clone())));
        }
        match serde_json::to_string(&obj(fields)) {
            Ok(line) => {
                out.push_str(&line);
                out.push('\n');
            }
            Err(_) => unreachable!("Value serialization is infallible"),
        }
    }
    out
}

/// Renders events as a Chrome trace-event document:
/// `{"traceEvents": [...]}` with `"M"` thread-name metadata first,
/// then one `"X"`/`"i"` entry per event (see module docs).
pub fn to_chrome(events: &[SpanEvent]) -> String {
    let mut lanes: Vec<u32> = events.iter().map(|e| e.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();

    let mut entries: Vec<Value> = lanes
        .iter()
        .map(|&lane| {
            obj(vec![
                ("name", Value::Str("thread_name".to_owned())),
                ("ph", Value::Str("M".to_owned())),
                ("pid", Value::UInt(PID)),
                ("tid", Value::UInt(u64::from(lane))),
                ("args", obj(vec![("name", Value::Str(lane_name(lane)))])),
            ])
        })
        .collect();

    for ev in events {
        // Chrome wants microseconds; keep fractional ns as decimals.
        let ts_us = ev.start_ns as f64 / 1e3;
        let mut fields = vec![
            ("name", Value::Str(ev.site.to_owned())),
            ("cat", Value::Str(category(ev.site).to_owned())),
            (
                "ph",
                Value::Str(
                    match ev.phase {
                        Phase::Span => "X",
                        Phase::Instant => "i",
                    }
                    .to_owned(),
                ),
            ),
            ("pid", Value::UInt(PID)),
            ("tid", Value::UInt(u64::from(ev.lane))),
            ("ts", Value::Float(ts_us)),
        ];
        match ev.phase {
            Phase::Span => fields.push(("dur", Value::Float(ev.dur_ns as f64 / 1e3))),
            Phase::Instant => fields.push(("s", Value::Str("t".to_owned()))),
        }
        fields.push(("args", args_value(ev)));
        entries.push(obj(fields));
    }

    let doc = obj(vec![("traceEvents", Value::Array(entries))]);
    match serde_json::to_string(&doc) {
        Ok(text) => text,
        Err(_) => unreachable!("Value serialization is infallible"),
    }
}

/// The `cat` field: the site's layer prefix (`net`, `svc`, `compile`,
/// …), which trace viewers use for filtering.
fn category(site: &str) -> &str {
    site.split('.').next().unwrap_or(site)
}

/// One entry parsed back out of a Chrome trace document — what the
/// round-trip test and `repro --trace-verify` consume.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    /// Event name (the span site, or `thread_name` for metadata).
    pub name: String,
    /// Chrome phase: `X`, `i`, or `M`.
    pub ph: String,
    /// Thread lane.
    pub tid: u64,
    /// Start, microseconds (0 for metadata).
    pub ts_us: f64,
    /// Duration, microseconds (0 for instants/metadata).
    pub dur_us: f64,
    /// Structured args, flattened to strings.
    pub args: BTreeMap<String, String>,
}

fn value_to_display(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Float(f) => f.to_string(),
        _ => String::new(),
    }
}

/// Parses a Chrome trace document back into events, validating the
/// envelope shape (`traceEvents` array of objects with `ph`/`tid`).
pub fn parse_chrome(text: &str) -> Result<Vec<ChromeEvent>, serde_json::Error> {
    use serde_json::Error;
    let doc: Value = serde_json::from_str(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| Error::custom("missing traceEvents array"))?;
    let mut out = Vec::with_capacity(events.len());
    for ev in events {
        let field_str = |key: &str| -> Result<String, Error> {
            match ev.get(key) {
                Some(Value::Str(s)) => Ok(s.clone()),
                _ => Err(Error::custom(format!("event missing string `{key}`"))),
            }
        };
        let field_num = |key: &str| -> f64 { ev.get(key).and_then(Value::as_f64).unwrap_or(0.0) };
        let args = ev
            .get("args")
            .and_then(Value::as_object)
            .map(|fields| {
                fields
                    .iter()
                    .map(|(k, v)| (k.clone(), value_to_display(v)))
                    .collect()
            })
            .unwrap_or_default();
        out.push(ChromeEvent {
            name: field_str("name")?,
            ph: field_str("ph")?,
            tid: field_num("tid") as u64,
            ts_us: field_num("ts"),
            dur_us: field_num("dur"),
            args,
        });
    }
    Ok(out)
}

/// Aggregate time spent at one site across a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageAgg {
    /// Spans recorded at the site.
    pub count: u64,
    /// Summed span duration, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// Per-site time totals for span events (instants are counted with
/// zero duration) — the table behind `repro --load`'s per-stage
/// breakdown. Sorted by site name for deterministic rendering.
pub fn stage_breakdown(events: &[SpanEvent]) -> Vec<(&'static str, StageAgg)> {
    let mut by_site: BTreeMap<&'static str, StageAgg> = BTreeMap::new();
    for ev in events {
        let agg = by_site.entry(ev.site).or_default();
        agg.count += 1;
        agg.total_ns += ev.dur_ns;
        agg.max_ns = agg.max_ns.max(ev.dur_ns);
    }
    by_site.into_iter().collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::sites;
    use crate::trace::SpanArgs;

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            SpanEvent {
                span_id: 1,
                parent_id: 0,
                site: sites::NET_REQUEST,
                lane: 0,
                start_ns: 1_000,
                dur_ns: 9_000,
                phase: Phase::Span,
                args: SpanArgs::default(),
            },
            SpanEvent {
                span_id: 2,
                parent_id: 1,
                site: sites::SVC_COALESCE,
                lane: 0,
                start_ns: 2_000,
                dur_ns: 500,
                phase: Phase::Span,
                args: SpanArgs {
                    role: Some("leader"),
                    config_hash: Some(0xdead_beef),
                    ..SpanArgs::default()
                },
            },
            SpanEvent {
                span_id: 3,
                parent_id: 2,
                site: sites::POOL_WORKER,
                lane: 2,
                start_ns: 3_000,
                dur_ns: 4_000,
                phase: Phase::Span,
                args: SpanArgs {
                    cache: Some("miss"),
                    ..SpanArgs::default()
                },
            },
            SpanEvent {
                span_id: 4,
                parent_id: 3,
                site: sites::FAULT_FIRED,
                lane: 2,
                start_ns: 3_500,
                dur_ns: 0,
                phase: Phase::Instant,
                args: SpanArgs {
                    detail: Some("pool.worker".to_owned()),
                    ..SpanArgs::default()
                },
            },
        ]
    }

    #[test]
    fn ndjson_is_one_valid_object_per_event() {
        let text = to_ndjson(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("valid JSON line");
            assert!(v.get("site").is_some());
        }
        assert!(lines[1].contains("\"role\":\"leader\""));
        assert!(lines[1].contains("00000000deadbeef"));
        assert!(!lines[0].contains("role"), "absent args omitted");
        assert!(lines[3].contains("\"phase\":\"instant\""));
    }

    #[test]
    fn chrome_round_trips_with_named_lanes() {
        let events = sample_events();
        let text = to_chrome(&events);
        let parsed = parse_chrome(&text).expect("parse back");

        // Metadata names exactly the lanes the events use.
        let meta: Vec<&ChromeEvent> = parsed.iter().filter(|e| e.ph == "M").collect();
        let named: Vec<(u64, &str)> = meta
            .iter()
            .map(|e| (e.tid, e.args["name"].as_str()))
            .collect();
        assert_eq!(named, vec![(0, "main"), (2, "worker-2")]);

        // Every non-metadata event references a named lane.
        let lanes: Vec<u64> = meta.iter().map(|e| e.tid).collect();
        let body: Vec<&ChromeEvent> = parsed.iter().filter(|e| e.ph != "M").collect();
        assert_eq!(body.len(), events.len());
        for ev in &body {
            assert!(lanes.contains(&ev.tid), "unknown lane {}", ev.tid);
        }

        // Spans render as X with µs timestamps; instants as i.
        let req = body.iter().find(|e| e.name == "net.request").unwrap();
        assert_eq!(req.ph, "X");
        assert!((req.ts_us - 1.0).abs() < 1e-9);
        assert!((req.dur_us - 9.0).abs() < 1e-9);
        assert_eq!(req.args["span"], "1");
        let fault = body.iter().find(|e| e.name == "fault.fired").unwrap();
        assert_eq!(fault.ph, "i");
        assert_eq!(fault.args["detail"], "pool.worker");
        let co = body.iter().find(|e| e.name == "svc.coalesce").unwrap();
        assert_eq!(co.args["role"], "leader");
        assert_eq!(co.args["config_hash"], "00000000deadbeef");
    }

    #[test]
    fn breakdown_sums_per_site() {
        let agg = stage_breakdown(&sample_events());
        let sites: Vec<&str> = agg.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            sites,
            vec!["fault.fired", "net.request", "pool.worker", "svc.coalesce"]
        );
        let pool = agg.iter().find(|(s, _)| *s == "pool.worker").unwrap().1;
        assert_eq!(pool.count, 1);
        assert_eq!(pool.total_ns, 4_000);
        assert_eq!(pool.max_ns, 4_000);
    }
}
