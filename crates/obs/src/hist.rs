//! Request-latency accounting for the serving layer: a fixed-bucket
//! streaming histogram that records in O(1) with **no allocation in
//! steady state** (two relaxed atomic adds per sample), so the hot
//! request path of a server can afford one per request.
//!
//! The layout is HDR-style: geometric octaves (powers of two in
//! nanoseconds) split into [`SUBBUCKETS`] linear sub-buckets, giving a
//! bounded relative error of `1/SUBBUCKETS` (12.5%) on every reported
//! quantile — plenty for p50/p99 serving dashboards, and far cheaper
//! than retaining per-request samples. Quantiles report the bucket's
//! *upper* bound, so they never understate a latency.
//!
//! [`LatencyHistogram::record`] takes `&self`: one histogram is shared
//! by every connection thread of a server (and merged across client
//! threads of the load generator) without a lock. It lived in
//! `qods_service::stats` before the observability layer existed; it
//! moved here so the metrics registry, the `stats` verb, and the load
//! generator all draw from one crate (qods-service re-exports it for
//! compatibility).

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Linear sub-buckets per power-of-two octave (the resolution knob:
/// relative quantile error is bounded by `1/SUBBUCKETS`).
pub const SUBBUCKETS: usize = 8;
/// Nanosecond octaves covered before clamping (2^40 ns ≈ 18 minutes —
/// far past any request this service answers).
const OCTAVES: usize = 40;
/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUBBUCKETS;

/// A concurrent fixed-bucket latency histogram (see module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// The bucket index for a sample of `ns` nanoseconds.
fn bucket_index(ns: u64) -> usize {
    // Samples below one full octave of sub-buckets land linearly.
    if ns < SUBBUCKETS as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros() as usize; // floor(log2), >= 3
    let shift = octave - SUBBUCKETS.trailing_zeros() as usize;
    let sub = ((ns >> shift) as usize) & (SUBBUCKETS - 1);
    ((octave - 2) * SUBBUCKETS + sub).min(BUCKETS - 1)
}

/// The (inclusive) upper bound in nanoseconds of bucket `index` — what
/// quantile lookups report.
fn bucket_upper_ns(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let octave = index / SUBBUCKETS + 2;
    let sub = (index % SUBBUCKETS) as u64;
    let base = 1u64 << octave;
    base + (sub + 1) * (base >> SUBBUCKETS.trailing_zeros()) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `[AtomicU64; 320]` has no Default impl at this size; build
        // the boxed array from a vec once, at construction only.
        let counts: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("bucket count is fixed"));
        LatencyHistogram {
            counts,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free and allocation-free.
    pub fn record(&self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample in nanoseconds. Lock-free and
    /// allocation-free.
    pub fn record_ns(&self, ns: u64) {
        self.counts[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Folds another histogram's samples into this one (the load
    /// generator gives each client thread its own histogram and merges
    /// at the end).
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The exact maximum recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// The latency at quantile `q` in `[0, 1]`, in nanoseconds: the
    /// upper bound of the bucket holding the `ceil(q * count)`-th
    /// sample (0 when empty). Relative error ≤ `1/SUBBUCKETS`, never
    /// an understatement; the top quantile is capped at the exact
    /// recorded maximum.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_ns(i).min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// Median latency in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_ns(0.50) as f64 / 1e3
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile_ns(0.99) as f64 / 1e3
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 / n as f64 / 1e3
        }
    }

    /// A serializable point-in-time summary (what the `stats` verb and
    /// the load report print).
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            mean_us: self.mean_us(),
            p50_us: self.p50_us(),
            p99_us: self.p99_us(),
            max_us: self.max_ns() as f64 / 1e3,
        }
    }
}

/// A snapshot of a [`LatencyHistogram`] — the wire shape of latency in
/// the `stats` verb and the `--load` report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Mean latency, microseconds.
    pub mean_us: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: f64,
    /// Maximum latency, microseconds.
    pub max_us: f64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = 0;
        for ns in [0u64, 1, 7, 8, 9, 100, 1_000, 65_537, 1 << 30, u64::MAX] {
            let idx = bucket_index(ns);
            assert!(idx < BUCKETS, "index {idx} out of range for {ns}");
            assert!(idx >= last || ns < 8, "bucket order broke at {ns}");
            last = idx;
            // A sample never lands in a bucket whose upper bound is
            // below it (quantiles must not understate).
            if idx < BUCKETS - 1 {
                assert!(bucket_upper_ns(idx) >= ns, "upper bound below {ns}");
            }
        }
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let h = LatencyHistogram::new();
        // Uniform 1..=10_000 microseconds.
        for us in 1..=10_000u64 {
            h.record_ns(us * 1_000);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile_ns(0.50) as f64;
        let p99 = h.quantile_ns(0.99) as f64;
        let expect50 = 5_000_000.0;
        let expect99 = 9_900_000.0;
        // Upper-bound reporting: never below the true quantile, and
        // within one sub-bucket (12.5%) above it.
        assert!(p50 >= expect50 && p50 <= expect50 * 1.13, "p50 {p50}");
        assert!(p99 >= expect99 && p99 <= expect99 * 1.13, "p99 {p99}");
        assert_eq!(h.max_ns(), 10_000_000);
        // The top quantile reports the exact maximum, not a bucket lid.
        assert_eq!(h.quantile_ns(1.0), 10_000_000);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for ns in [10u64, 999, 4_321, 1_000_000] {
            a.record_ns(ns);
            both.record_ns(ns);
        }
        for ns in [77u64, 123_456, 7] {
            b.record_ns(ns);
            both.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.max_ns(), both.max_ns());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile_ns(q), both.quantile_ns(q));
        }
        assert_eq!(a.summary(), both.summary());
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record_ns(1 + t * 1_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
        assert_eq!(h.max_ns(), 4_000);
    }

    #[test]
    fn summary_round_trips_through_serde() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(250));
        h.record(Duration::from_millis(3));
        let s = h.summary();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: LatencySummary = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, s);
        assert_eq!(back.count, 2);
    }
}
