//! The unified metrics registry: typed [`Counter`] / [`Gauge`] /
//! histogram handles registered by static site name, one registry per
//! serving stack (plus a process-global default), and one serde
//! [`MetricsSnapshot`] every reader — the `stats` verb, the new
//! `metrics` verb, `BENCH_serve.json` — renders from.
//!
//! Each instrumented structure keeps its own semantics (the context
//! pool still counts hits, the gate still gauges permits); what
//! changes is *where the numbers live*: handles are `Arc`s into a
//! [`Registry`], so a snapshot is one walk over sorted maps instead
//! of a hand-maintained field list per struct. Registries are
//! instantiable — a test or bench that builds two servers in one
//! process gives each its own — and [`Registry::global`] serves
//! process-wide singletons like the artifact store.
//!
//! Handle updates are relaxed atomics: metric reads are telemetry and
//! never feed a result line (the A1 lint boundary).

use crate::hist::{LatencyHistogram, LatencySummary};
use crate::sites;
use crate::trace::TraceStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

fn plock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing count (requests answered, faults
/// fired). Lock-free; updates are relaxed.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (open connections, permits out). Lock-free;
/// updates are relaxed.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level up by one.
    pub fn rise(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Moves the level down by one.
    pub fn fall(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set of named metrics with one snapshot shape (see module docs).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<LatencyHistogram>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-global registry (for process-wide singletons; a
    /// per-server stack should carry its own instance).
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter registered at `site` (created on first request).
    /// `site` must be in [`crate::sites::ALL`] — lint rule O1 checks
    /// literals at call sites, and debug builds assert it.
    pub fn counter(&self, site: &'static str) -> Arc<Counter> {
        debug_assert!(sites::is_site(site), "unknown metric site `{site}`");
        Arc::clone(plock(&self.counters).entry(site).or_default())
    }

    /// The gauge registered at `site` (created on first request).
    pub fn gauge(&self, site: &'static str) -> Arc<Gauge> {
        debug_assert!(sites::is_site(site), "unknown metric site `{site}`");
        Arc::clone(plock(&self.gauges).entry(site).or_default())
    }

    /// The histogram registered at `site` (created on first request).
    pub fn histogram(&self, site: &'static str) -> Arc<LatencyHistogram> {
        debug_assert!(sites::is_site(site), "unknown metric site `{site}`");
        Arc::clone(plock(&self.histograms).entry(site).or_default())
    }

    /// One point-in-time view of every registered metric, plus the
    /// process tracer's buffer accounting — the single struct the
    /// `stats`/`metrics` verbs and the bench reports serialize.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: plock(&self.counters)
                .iter()
                .map(|(k, c)| ((*k).to_owned(), c.get()))
                .collect(),
            gauges: plock(&self.gauges)
                .iter()
                .map(|(k, g)| ((*k).to_owned(), g.get()))
                .collect(),
            latency: plock(&self.histograms)
                .iter()
                .map(|(k, h)| ((*k).to_owned(), h.summary()))
                .collect(),
            trace: crate::trace::tracer().stats(),
        }
    }

    /// Reads one counter's current value (0 when never registered) —
    /// for snapshot-shaping code that must not create the site.
    pub fn counter_value(&self, site: &str) -> u64 {
        plock(&self.counters).get(site).map_or(0, |c| c.get())
    }
}

/// The serde form of a [`Registry::snapshot`]: sorted site-name maps,
/// so output is deterministic and new sites need no schema change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by site.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by site.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by site.
    pub latency: BTreeMap<String, LatencySummary>,
    /// Span-buffer occupancy and drop accounting.
    pub trace: TraceStats,
}

/// The serving path's robustness counters — **one** shared shape for
/// the `stats` verb and `BENCH_serve.json`'s robustness block, sourced
/// from the registry (the satellite contract: a counter visible in one
/// must be visible in both).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RobustnessSnapshot {
    /// Job panics caught and answered as typed `internal_error` lines.
    pub panics_caught: u64,
    /// Requests cancelled at a deadline boundary.
    pub deadline_exceeded: u64,
    /// NDJSON lines rejected for exceeding the server's line cap.
    pub lines_rejected: u64,
    /// Idle connections reaped by the read timeout.
    pub idle_reaped: u64,
}

impl RobustnessSnapshot {
    /// Reads the robustness counters out of `registry`.
    pub fn from_registry(registry: &Registry) -> Self {
        RobustnessSnapshot {
            panics_caught: registry.counter_value(sites::SVC_PANICS_CAUGHT),
            deadline_exceeded: registry.counter_value(sites::SVC_DEADLINE_EXCEEDED),
            lines_rejected: registry.counter_value(sites::NET_LINES_REJECTED),
            idle_reaped: registry.counter_value(sites::NET_IDLE_REAPED),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_site_and_registries_are_isolated() {
        let a = Registry::new();
        let b = Registry::new();
        let c1 = a.counter(sites::NET_REQUESTS);
        let c2 = a.counter(sites::NET_REQUESTS);
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3, "same site, same underlying counter");
        assert_eq!(b.counter(sites::NET_REQUESTS).get(), 0, "isolated");

        let g = a.gauge(sites::NET_CONNECTIONS);
        g.rise();
        g.rise();
        g.fall();
        assert_eq!(g.get(), 1);

        a.histogram(sites::NET_LATENCY)
            .record(std::time::Duration::from_millis(2));
        let snap = a.snapshot();
        assert_eq!(snap.counters["net.requests"], 3);
        assert_eq!(snap.gauges["net.connections"], 1);
        assert_eq!(snap.latency["net.latency"].count, 1);
    }

    #[test]
    fn snapshot_round_trips_through_serde_with_sorted_sites() {
        let r = Registry::new();
        r.counter(sites::SVC_EXECUTED).add(7);
        r.counter(sites::CACHE_CONTEXT_HITS).add(3);
        r.gauge(sites::GATE_ACTIVE).set(2);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serialize");
        // BTreeMap order: cache.* precedes svc.* in the text itself.
        let cache_at = json.find("cache.context_hits").expect("cache site");
        let svc_at = json.find("svc.executed").expect("svc site");
        assert!(cache_at < svc_at, "sites serialize sorted: {json}");
        let back: MetricsSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn robustness_snapshot_reads_without_creating_sites() {
        let r = Registry::new();
        let snap = RobustnessSnapshot::from_registry(&r);
        assert_eq!(snap, RobustnessSnapshot::default());
        assert!(r.snapshot().counters.is_empty(), "read did not register");
        r.counter(sites::SVC_PANICS_CAUGHT).add(2);
        r.counter(sites::NET_IDLE_REAPED).inc();
        let snap = RobustnessSnapshot::from_registry(&r);
        assert_eq!(snap.panics_caught, 2);
        assert_eq!(snap.idle_reaped, 1);
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: RobustnessSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }
}
