//! # qods-fault — deterministic, seeded fault injection
//!
//! The serving stack (`qods-serve` over `qods-service` over the
//! engines) claims to survive I/O failures, worker panics, slow
//! clients, and expired deadlines. This crate is how those claims are
//! *tested* rather than asserted: production code is instrumented
//! with named **sites** (`store.read`, `store.write`, `pool.worker`,
//! `net.conn`, `mc.chunk`), and a test arms a [`FaultPlan`] that
//! fires a typed [`FaultAction`] on the N-th operation a site sees —
//! optionally repeating, optionally scattered pseudo-randomly from a
//! seed. Everything is counter-based, nothing is time-based, so a
//! chaos run is reproducible: the same plan against the same request
//! sequence injects the same faults at the same operations.
//!
//! ## Cost when disarmed
//!
//! [`check`] is a single relaxed atomic load when no plan is armed —
//! cheap enough to leave in release binaries on warm paths (the
//! instrumented sites are per-I/O or per-chunk, never per-trial).
//!
//! ## Driving a child process
//!
//! Plans round-trip through a compact spec string
//! ([`FaultPlan::parse`] / [`FaultPlan::render`]) carried in the
//! [`FAULT_PLAN_ENV`] environment variable, so the chaos integration
//! suite can configure the *real* `qods-serve` binary it spawns:
//!
//! ```text
//! QODS_FAULT_PLAN="store.write:3=io;pool.worker:2+5=panic;mc.chunk:1+1=delay:20"
//! ```
//!
//! reads "fail the 3rd store write with an I/O error; panic pool
//! workers on op 2 and every 5th after; delay every MC chunk by
//! 20 ms".

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Environment variable a process reads its fault plan from (see
/// [`arm_from_env`]). Unset or empty means "no faults".
pub const FAULT_PLAN_ENV: &str = "QODS_FAULT_PLAN";

/// The canonical instrumented-site names. Production code passes
/// these constants to [`check`]/[`check_sleeping`] (never free-form
/// strings), [`FaultPlan::parse`] rejects any site not listed here,
/// and the `qods-lint` S1 rule cross-checks every site string literal
/// in the workspace against [`SITES`] — so a typo-ed site becomes a
/// parse error or a lint failure instead of a fault that silently
/// never fires. Adding an instrumented site means adding it here.
pub mod site {
    /// Disk-tier artifact read in `qods-compile`'s `ArtifactStore`.
    pub const STORE_READ: &str = "store.read";
    /// Disk-tier artifact write in `qods-compile`'s `ArtifactStore`.
    pub const STORE_WRITE: &str = "store.write";
    /// One unit of work on a `qods-pool` worker thread.
    pub const POOL_WORKER: &str = "pool.worker";
    /// One request line handled on a `qods-net` connection.
    pub const NET_CONN: &str = "net.conn";
    /// One Monte-Carlo trial chunk in `qods-phys`.
    pub const MC_CHUNK: &str = "mc.chunk";
}

/// Every canonical site, as data — the registry `qods-lint` and
/// [`FaultPlan::parse`] validate against.
pub const SITES: &[&str] = &[
    site::STORE_READ,
    site::STORE_WRITE,
    site::POOL_WORKER,
    site::NET_CONN,
    site::MC_CHUNK,
];

/// Whether `name` is a canonical instrumented site.
pub fn is_site(name: &str) -> bool {
    SITES.contains(&name)
}

/// Why a fault-plan spec string failed to parse — typed so callers
/// can distinguish a typo-ed site (spec names a site that does not
/// exist, so the fault would never fire) from a malformed entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// An entry has no `=action` suffix.
    MissingAction {
        /// The malformed entry.
        entry: String,
    },
    /// An entry has no `site:nth` head.
    MissingSite {
        /// The malformed entry.
        entry: String,
    },
    /// An entry's site name is empty.
    EmptySite {
        /// The malformed entry.
        entry: String,
    },
    /// An entry's operation index is not a number.
    BadIndex {
        /// The malformed entry.
        entry: String,
    },
    /// An entry's repeat period is not a number.
    BadPeriod {
        /// The malformed entry.
        entry: String,
    },
    /// An entry's action is unknown or malformed.
    BadAction {
        /// The action parser's diagnostic.
        message: String,
    },
    /// An entry names a site that is not in [`SITES`] — the fault
    /// would arm but never fire, which is exactly the silent drift
    /// this error exists to catch.
    UnknownSite {
        /// The unrecognized site name.
        site: String,
        /// The entry that named it.
        entry: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::MissingAction { entry } => {
                write!(f, "fault spec `{entry}` is missing `=action`")
            }
            PlanError::MissingSite { entry } => {
                write!(f, "fault spec `{entry}` is missing `site:nth`")
            }
            PlanError::EmptySite { entry } => {
                write!(f, "fault spec `{entry}` has an empty site")
            }
            PlanError::BadIndex { entry } => {
                write!(f, "bad operation index in `{entry}`")
            }
            PlanError::BadPeriod { entry } => {
                write!(f, "bad repeat period in `{entry}`")
            }
            PlanError::BadAction { message } => write!(f, "{message}"),
            PlanError::UnknownSite { site, entry } => write!(
                f,
                "unknown fault site `{site}` in `{entry}` (canonical sites: {})",
                SITES.join(", ")
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// What an armed site does when its spec fires. Sites act on the
/// actions they understand and ignore the rest (a `Disconnect` at a
/// store site is a no-op), so one plan can drive many layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Fail the operation with a synthetic I/O error (ENOSPC-style:
    /// the operation reports failure, nothing is written/read).
    IoError,
    /// Write a torn/partial artifact: truncated bytes land under the
    /// *final* name, bypassing the atomic temp+rename path —
    /// simulating external corruption or a crashed writer.
    TornWrite,
    /// Corrupt the bytes an otherwise-successful read returns.
    CorruptRead,
    /// Drop the connection mid-request (close both halves).
    Disconnect,
    /// Sleep this many milliseconds before the operation proceeds.
    Delay(u64),
    /// Panic on the operation's thread (`catch_unwind` coverage).
    Panic,
}

impl FaultAction {
    fn render(self) -> String {
        match self {
            FaultAction::IoError => "io".to_string(),
            FaultAction::TornWrite => "torn".to_string(),
            FaultAction::CorruptRead => "corrupt".to_string(),
            FaultAction::Disconnect => "disconnect".to_string(),
            FaultAction::Delay(ms) => format!("delay:{ms}"),
            FaultAction::Panic => "panic".to_string(),
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "io" => Ok(FaultAction::IoError),
            "torn" => Ok(FaultAction::TornWrite),
            "corrupt" => Ok(FaultAction::CorruptRead),
            "disconnect" => Ok(FaultAction::Disconnect),
            "panic" => Ok(FaultAction::Panic),
            other => match other.strip_prefix("delay:") {
                Some(ms) => ms
                    .parse::<u64>()
                    .map(FaultAction::Delay)
                    .map_err(|_| format!("bad delay milliseconds in `{other}`")),
                None => Err(format!(
                    "unknown fault action `{other}` (io, torn, corrupt, disconnect, delay:MS, panic)"
                )),
            },
        }
    }
}

/// One fire-on-nth-operation fault: at site `site`, on the `nth`
/// operation (1-based) — and, with `every = Some(k)`, on every k-th
/// operation after that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// The instrumented site name (e.g. `store.write`).
    pub site: String,
    /// 1-based operation index of the first firing.
    pub nth: u64,
    /// Repeat period after the first firing (`None` = fire once).
    pub every: Option<u64>,
    /// What happens when the spec fires.
    pub action: FaultAction,
}

impl FaultSpec {
    /// Whether this spec fires on operation `op` (1-based).
    fn fires(&self, op: u64) -> bool {
        if op < self.nth {
            return false;
        }
        match self.every {
            None => op == self.nth,
            Some(k) => (op - self.nth).is_multiple_of(k.max(1)),
        }
    }

    fn render(&self) -> String {
        match self.every {
            None => format!("{}:{}={}", self.site, self.nth, self.action.render()),
            Some(k) => format!("{}:{}+{}={}", self.site, self.nth, k, self.action.render()),
        }
    }
}

/// An ordered set of [`FaultSpec`]s. On each operation the *first*
/// matching spec (plan order) fires; counters are per site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (arming it injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds "on the `nth` operation at `site`, do `action`" (fires
    /// once).
    pub fn once(mut self, site: &str, nth: u64, action: FaultAction) -> Self {
        self.specs.push(FaultSpec {
            site: site.to_string(),
            nth: nth.max(1),
            every: None,
            action,
        });
        self
    }

    /// Adds a repeating fault: first on operation `nth`, then every
    /// `every`-th operation after it.
    pub fn repeating(mut self, site: &str, nth: u64, every: u64, action: FaultAction) -> Self {
        self.specs.push(FaultSpec {
            site: site.to_string(),
            nth: nth.max(1),
            every: Some(every.max(1)),
            action,
        });
        self
    }

    /// Adds `count` one-shot faults at pseudo-random distinct
    /// operation indices in `1..=range`, deterministically derived
    /// from `seed` — how a chaos test scatters a hundred faults over
    /// a workload without hand-placing each one.
    pub fn scatter(
        mut self,
        site: &str,
        action: FaultAction,
        seed: u64,
        count: u64,
        range: u64,
    ) -> Self {
        let range = range.max(1);
        let count = count.min(range);
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut picked = Vec::with_capacity(count as usize);
        while (picked.len() as u64) < count {
            state = splitmix64(state);
            let nth = state % range + 1;
            if !picked.contains(&nth) {
                picked.push(nth);
            }
        }
        picked.sort_unstable();
        for nth in picked {
            self.specs.push(FaultSpec {
                site: site.to_string(),
                nth,
                every: None,
                action,
            });
        }
        self
    }

    /// The specs, in plan order.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// How many specs the plan holds.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Renders the compact spec string [`FaultPlan::parse`] accepts —
    /// what a test exports as [`FAULT_PLAN_ENV`] for a child process.
    pub fn render(&self) -> String {
        self.specs
            .iter()
            .map(FaultSpec::render)
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses a plan from its compact spec string:
    /// `site:nth[+every]=action[:ms]` entries joined by `;`.
    ///
    /// Sites are validated against the canonical [`SITES`] registry:
    /// this is the untrusted boundary (the [`FAULT_PLAN_ENV`] env
    /// var), and a typo-ed site must be a loud startup failure, not a
    /// fault that silently never fires. (The in-process builder API —
    /// [`FaultPlan::once`] and friends — stays free-form so the
    /// injector's own tests can use synthetic sites.)
    ///
    /// # Errors
    ///
    /// A typed [`PlanError`] naming the malformed entry.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let mut plan = FaultPlan::new();
        for entry in text.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (head, action) = entry
                .split_once('=')
                .ok_or_else(|| PlanError::MissingAction {
                    entry: entry.to_string(),
                })?;
            let (site, position) = head.split_once(':').ok_or_else(|| PlanError::MissingSite {
                entry: entry.to_string(),
            })?;
            if site.is_empty() {
                return Err(PlanError::EmptySite {
                    entry: entry.to_string(),
                });
            }
            if !is_site(site) {
                return Err(PlanError::UnknownSite {
                    site: site.to_string(),
                    entry: entry.to_string(),
                });
            }
            let (nth_text, every) = match position.split_once('+') {
                Some((n, k)) => {
                    let every = k.parse::<u64>().map_err(|_| PlanError::BadPeriod {
                        entry: entry.to_string(),
                    })?;
                    (n, Some(every.max(1)))
                }
                None => (position, None),
            };
            let nth = nth_text.parse::<u64>().map_err(|_| PlanError::BadIndex {
                entry: entry.to_string(),
            })?;
            plan.specs.push(FaultSpec {
                site: site.to_string(),
                nth: nth.max(1),
                every,
                action: FaultAction::parse(action)
                    .map_err(|message| PlanError::BadAction { message })?,
            });
        }
        Ok(plan)
    }
}

/// The armed plan plus its per-site operation/fired counters.
#[derive(Debug, Default)]
struct Armed {
    specs: Vec<FaultSpec>,
    ops: HashMap<String, u64>,
    fired: HashMap<String, u64>,
    fired_total: u64,
}

/// Fast-path switch: `false` means [`check`] returns `None` after one
/// relaxed load, without touching the mutex.
static IS_ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armed>> = Mutex::new(None);

fn state() -> std::sync::MutexGuard<'static, Option<Armed>> {
    // A panic while holding this lock (e.g. an injected Panic action
    // unwinding through a caller that re-enters) must not wedge the
    // injector: the data is counters, always valid.
    STATE
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arms `plan` process-wide, resetting all counters. Replaces any
/// previously armed plan.
pub fn arm(plan: FaultPlan) {
    let mut guard = state();
    *guard = Some(Armed {
        specs: plan.specs,
        ..Armed::default()
    });
    IS_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection (counters are dropped).
pub fn disarm() {
    let mut guard = state();
    *guard = None;
    IS_ARMED.store(false, Ordering::SeqCst);
}

/// Whether a plan is currently armed.
pub fn is_armed() -> bool {
    IS_ARMED.load(Ordering::SeqCst)
}

/// Arms the plan in [`FAULT_PLAN_ENV`], if the variable is set and
/// non-empty. `Ok(true)` when a plan was armed.
///
/// # Errors
///
/// The typed parse error when the variable holds a malformed spec or
/// an unknown site (the process stays disarmed — a typo must not
/// silently run faultless).
pub fn arm_from_env() -> Result<bool, PlanError> {
    match std::env::var(FAULT_PLAN_ENV) {
        Ok(text) if !text.trim().is_empty() => {
            let plan = FaultPlan::parse(&text)?;
            arm(plan);
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// The instrumented-site hook: counts one operation at `site` and
/// returns the action to inject, if the armed plan says this
/// operation faults. `None` (after one atomic load) when disarmed.
pub fn check(site: &str) -> Option<FaultAction> {
    if !IS_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut guard = state();
    let armed = guard.as_mut()?;
    let op = armed.ops.entry(site.to_string()).or_insert(0);
    *op += 1;
    let op = *op;
    let action = armed
        .specs
        .iter()
        .find(|s| s.site == site && s.fires(op))
        .map(|s| s.action)?;
    *armed.fired.entry(site.to_string()).or_insert(0) += 1;
    armed.fired_total += 1;
    // Every firing is observable: an instant event in the trace (with
    // the fault site as detail) and a process-wide counter. Both are
    // telemetry — the injected action itself is unchanged.
    qods_obs::trace::fault_fired(site);
    qods_obs::Registry::global()
        .counter(qods_obs::sites::FAULT_FIRED_TOTAL)
        .inc();
    Some(action)
}

/// [`check`] with the [`FaultAction::Delay`] action applied in place
/// (sleeps, returns `None`): the convenience form for sites where a
/// delay needs no site-specific handling.
pub fn check_sleeping(site: &str) -> Option<FaultAction> {
    match check(site) {
        Some(FaultAction::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        other => other,
    }
}

/// Faults fired since arming (all sites).
pub fn fired_total() -> u64 {
    state().as_ref().map_or(0, |a| a.fired_total)
}

/// Faults fired at one site since arming.
pub fn fired_at(site: &str) -> u64 {
    state()
        .as_ref()
        .and_then(|a| a.fired.get(site).copied())
        .unwrap_or(0)
}

/// Operations counted at one site since arming.
pub fn ops_at(site: &str) -> u64 {
    state()
        .as_ref()
        .and_then(|a| a.ops.get(site).copied())
        .unwrap_or(0)
}

/// SplitMix64 — the scatter generator (self-contained; this crate
/// depends only on the equally-leaf `qods-obs` telemetry crate).
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The injector is process-global; tests that arm it serialize
    /// through this lock so the parallel harness cannot interleave
    /// their plans.
    static ARM_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        ARM_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disarmed_checks_are_free_and_empty() {
        let _x = exclusive();
        disarm();
        assert!(!is_armed());
        for _ in 0..100 {
            assert_eq!(check("store.write"), None);
        }
    }

    #[test]
    fn nth_operation_fires_exactly_once() {
        let _x = exclusive();
        arm(FaultPlan::new().once("store.write", 3, FaultAction::IoError));
        assert_eq!(check("store.write"), None);
        assert_eq!(check("store.read"), None, "sites count independently");
        assert_eq!(check("store.write"), None);
        assert_eq!(check("store.write"), Some(FaultAction::IoError));
        assert_eq!(check("store.write"), None);
        assert_eq!(fired_at("store.write"), 1);
        assert_eq!(ops_at("store.write"), 4);
        assert_eq!(fired_total(), 1);
        disarm();
    }

    #[test]
    fn repeating_faults_fire_on_the_period() {
        let _x = exclusive();
        arm(FaultPlan::new().repeating("pool.worker", 2, 3, FaultAction::Panic));
        let fired: Vec<bool> = (0..9).map(|_| check("pool.worker").is_some()).collect();
        assert_eq!(
            fired,
            vec![false, true, false, false, true, false, false, true, false]
        );
        disarm();
    }

    #[test]
    fn scatter_is_deterministic_and_distinct() {
        let a = FaultPlan::new().scatter("net.conn", FaultAction::Disconnect, 42, 10, 100);
        let b = FaultPlan::new().scatter("net.conn", FaultAction::Disconnect, 42, 10, 100);
        assert_eq!(a, b, "same seed, same plan");
        assert_eq!(a.len(), 10);
        let nths: Vec<u64> = a.specs().iter().map(|s| s.nth).collect();
        let mut dedup = nths.clone();
        dedup.dedup();
        assert_eq!(nths, dedup, "scattered indices are distinct");
        assert!(nths.iter().all(|&n| (1..=100).contains(&n)));
        let c = FaultPlan::new().scatter("net.conn", FaultAction::Disconnect, 43, 10, 100);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn plan_round_trips_through_the_spec_string() {
        let plan = FaultPlan::new()
            .once("store.write", 3, FaultAction::IoError)
            .repeating("pool.worker", 2, 5, FaultAction::Panic)
            .once("mc.chunk", 1, FaultAction::Delay(20))
            .once("store.read", 7, FaultAction::CorruptRead)
            .once("net.conn", 4, FaultAction::Disconnect)
            .once("store.write", 9, FaultAction::TornWrite);
        let text = plan.render();
        assert_eq!(
            text,
            "store.write:3=io;pool.worker:2+5=panic;mc.chunk:1=delay:20;\
             store.read:7=corrupt;net.conn:4=disconnect;store.write:9=torn"
        );
        let back = FaultPlan::parse(&text).expect("render must parse");
        assert_eq!(back, plan);
    }

    #[test]
    fn malformed_specs_are_loud_errors() {
        let diag = |text: &str| FaultPlan::parse(text).unwrap_err().to_string();
        assert!(diag("store.write=io").contains("site:nth"));
        assert!(diag("store.write:3").contains("=action"));
        assert!(diag("store.write:x=io").contains("operation index"));
        assert!(diag("store.write:3=explode").contains("unknown fault action"));
        assert!(diag("store.write:3=delay:soon").contains("delay milliseconds"));
        assert!(diag(":3=io").contains("empty site"));
        // Empty entries (trailing semicolons) are tolerated.
        assert_eq!(
            FaultPlan::parse("store.write:1=io;;")
                .expect("parses")
                .len(),
            1
        );
        assert!(FaultPlan::parse("").expect("empty is fine").is_empty());
    }

    #[test]
    fn unknown_sites_are_typed_parse_errors() {
        // A typo-ed site must fail loudly at the untrusted boundary:
        // armed-but-never-firing is the silent drift this catches.
        let err = FaultPlan::parse("store.wrte:1=io").unwrap_err();
        assert_eq!(
            err,
            PlanError::UnknownSite {
                site: "store.wrte".to_string(),
                entry: "store.wrte:1=io".to_string(),
            }
        );
        assert!(err.to_string().contains("canonical sites"));
        // Every canonical site parses.
        for site in SITES {
            assert!(is_site(site));
            let plan = FaultPlan::parse(&format!("{site}:1=io")).expect("canonical site parses");
            assert_eq!(plan.len(), 1);
        }
        assert!(!is_site("store.wrte"));
    }

    #[test]
    fn check_sleeping_absorbs_delays_and_passes_the_rest() {
        let _x = exclusive();
        arm(FaultPlan::new()
            .once("mc.chunk", 1, FaultAction::Delay(1))
            .once("mc.chunk", 2, FaultAction::Panic));
        let t0 = std::time::Instant::now();
        assert_eq!(check_sleeping("mc.chunk"), None, "delay is applied inline");
        assert!(t0.elapsed().as_millis() >= 1);
        assert_eq!(check_sleeping("mc.chunk"), Some(FaultAction::Panic));
        disarm();
    }

    #[test]
    fn first_matching_spec_wins() {
        let _x = exclusive();
        arm(FaultPlan::new()
            .once("s", 1, FaultAction::IoError)
            .once("s", 1, FaultAction::Panic));
        assert_eq!(check("s"), Some(FaultAction::IoError));
        disarm();
    }
}
