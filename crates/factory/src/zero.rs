//! The fully pipelined encoded-zero ancilla factory (§4.4.1,
//! Figs 12-13, Tables 5-6).
//!
//! Four pipeline stages: physical zero preparation (with optional
//! Hadamard), the encoder CX rounds alongside 3-qubit cat preparation,
//! verification, and bit/phase correction. Each seven physical qubits
//! leaving the CX stage form one encoded zero; ~99.8% survive
//! verification; and two out of every three verified blocks are
//! consumed correcting the third, giving
//!
//! ```text
//! throughput = (CX out / 7) x success x 1/3 = 10.5 ancillae / ms
//! ```

use crate::pipeline::{units_to_cover, CrossbarColumns, SizedFactory, SizedStage};
use crate::unit::FunctionalUnit;
use qods_phys::latency::{LatencyTable, SymbolicLatency};

/// Verification success probability. The paper measures 99.8% by Monte
/// Carlo (§2.3); our own Monte Carlo reproduces 0.25% failure at the
/// paper's error rates (see `qods-steane`), and the factory model uses
/// the paper's published constant.
pub const VERIFICATION_SUCCESS: f64 = 0.998;

/// The encoded-zero factory specification.
#[derive(Debug, Clone)]
pub struct ZeroFactory {
    latency: LatencyTable,
}

impl ZeroFactory {
    /// The paper's configuration (ion-trap latencies).
    pub fn paper() -> Self {
        ZeroFactory {
            latency: LatencyTable::ion_trap(),
        }
    }

    /// A configuration with custom physical latencies.
    pub fn with_latencies(latency: LatencyTable) -> Self {
        ZeroFactory { latency }
    }

    /// The latency table in use.
    pub fn latency_table(&self) -> &LatencyTable {
        &self.latency
    }

    /// Table 5 row: the physical zero-prepare unit.
    pub fn zero_prep_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Zero Prep",
            latency: SymbolicLatency::new().prep(1).one_q(1).turn(2).mov(1),
            stages: 1,
            qubits_in: 1,
            qubits_out: 1,
            success: 1.0,
            area: 1,
            height: 1,
        }
    }

    /// Table 5 row: the encoder CX unit (three rounds of three
    /// parallel CXs; three qubit groups in flight).
    pub fn cx_stage_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "CX Stage",
            latency: SymbolicLatency::new().two_q(3).turn(6).mov(5),
            stages: 3,
            qubits_in: 7,
            qubits_out: 7,
            success: 1.0,
            area: 28,
            height: 4,
        }
    }

    /// Table 5 row: the 3-qubit cat-state unit.
    pub fn cat_prep_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Cat State Prep",
            latency: SymbolicLatency::new().two_q(2).turn(4).mov(2),
            stages: 2,
            qubits_in: 3,
            qubits_out: 3,
            success: 1.0,
            area: 6,
            height: 2,
        }
    }

    /// Table 5 row: the verification unit (10 macroblocks: 7 block
    /// qubits + 3 cat qubits held during measurement).
    pub fn verification_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Verification",
            latency: SymbolicLatency::new().meas(1).two_q(1).turn(2).mov(2),
            stages: 1,
            qubits_in: 10,
            qubits_out: 7,
            success: VERIFICATION_SUCCESS,
            area: 10,
            height: 10,
        }
    }

    /// Table 5 row: the bit/phase correction unit (three encoded
    /// ancillae: the product plus two correction blocks measured in
    /// parallel).
    pub fn correction_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "B/P Correction",
            latency: SymbolicLatency::new().meas(1).two_q(2).turn(6).mov(8),
            stages: 1,
            qubits_in: 21,
            qubits_out: 7,
            success: 1.0,
            area: 21,
            height: 21,
        }
    }

    /// All five Table 5 units, in pipeline order.
    pub fn units() -> Vec<FunctionalUnit> {
        vec![
            Self::zero_prep_unit(),
            Self::cx_stage_unit(),
            Self::cat_prep_unit(),
            Self::verification_unit(),
            Self::correction_unit(),
        ]
    }

    /// Sizes the factory by bandwidth matching (Table 6).
    ///
    /// Stage 2 holds one CX unit and one cat-prep unit (their 7:3
    /// output ratio matches verification's input mix); upstream and
    /// downstream stages are matched to that flow.
    pub fn bandwidth_matched(&self) -> SizedFactory {
        let t = &self.latency;
        let cx = Self::cx_stage_unit();
        let cat = Self::cat_prep_unit();
        let zp = Self::zero_prep_unit();
        let verify = Self::verification_unit();
        let bp = Self::correction_unit();

        let cx_count = 1u32;
        let cat_count = 1u32;
        let stage2_out =
            f64::from(cx_count) * cx.bw_out_per_ms(t) + f64::from(cat_count) * cat.bw_out_per_ms(t);
        // Stage 1 must feed both CX and cat prep with raw qubits.
        let zp_count = units_to_cover(stage2_out, &zp, t);
        // Stage 3 consumes the full stage-2 flow (block + cat qubits).
        let verify_count = units_to_cover(stage2_out, &verify, t);
        // Stage 4 consumes verified blocks (21 qubits per initiation).
        let verified_out = f64::from(verify_count) * verify.bw_out_per_ms(t);
        let bp_count = units_to_cover(verified_out, &bp, t);

        // Throughput: the CX stage is the bottleneck; each 7 qubits
        // out is an encoded ancilla, derated by verification success
        // and the 3-into-1 correction.
        let cx_blocks_per_ms = f64::from(cx_count) * cx.bw_out_per_ms(t) / 7.0;
        let throughput = cx_blocks_per_ms * VERIFICATION_SUCCESS / 3.0;

        SizedFactory {
            name: "pipelined encoded-zero factory",
            stages: vec![
                SizedStage {
                    unit: zp,
                    count: zp_count,
                },
                SizedStage {
                    unit: cx,
                    count: cx_count,
                },
                SizedStage {
                    unit: cat,
                    count: cat_count,
                },
                SizedStage {
                    unit: verify,
                    count: verify_count,
                },
                SizedStage {
                    unit: bp,
                    count: bp_count,
                },
            ],
            stage_groups: vec![vec![0], vec![1, 2], vec![3], vec![4]],
            crossbars: vec![
                CrossbarColumns::Single, // funnel-in to stage 2
                CrossbarColumns::Double,
                CrossbarColumns::Double,
            ],
            throughput_per_ms: throughput,
        }
    }
}

impl Default for ZeroFactory {
    fn default() -> Self {
        ZeroFactory::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_latencies_and_bandwidths() {
        let t = LatencyTable::ion_trap();
        let rows: Vec<(FunctionalUnit, f64, f64, f64)> = vec![
            // unit, latency, bw_in, bw_out (Table 5 numeric columns)
            (ZeroFactory::zero_prep_unit(), 73.0, 13.7, 13.7),
            (ZeroFactory::cx_stage_unit(), 95.0, 221.1, 221.1),
            (ZeroFactory::cat_prep_unit(), 62.0, 96.8, 96.8),
            (ZeroFactory::verification_unit(), 82.0, 122.0, 85.2),
            (ZeroFactory::correction_unit(), 138.0, 152.2, 50.7),
        ];
        for (u, lat, bin, bout) in rows {
            assert_eq!(u.latency_us(&t), lat, "{} latency", u.name);
            assert!(
                (u.bw_in_per_ms(&t) - bin).abs() < 0.15,
                "{} bw_in {} vs {}",
                u.name,
                u.bw_in_per_ms(&t),
                bin
            );
            assert!(
                (u.bw_out_per_ms(&t) - bout).abs() < 0.15,
                "{} bw_out {} vs {}",
                u.name,
                u.bw_out_per_ms(&t),
                bout
            );
        }
    }

    #[test]
    fn table6_unit_counts() {
        let f = ZeroFactory::paper().bandwidth_matched();
        let counts: Vec<(&str, u32)> = f.stages.iter().map(|s| (s.unit.name, s.count)).collect();
        assert_eq!(
            counts,
            vec![
                ("Zero Prep", 24),
                ("CX Stage", 1),
                ("Cat State Prep", 1),
                ("Verification", 3),
                ("B/P Correction", 2),
            ]
        );
    }

    #[test]
    fn table6_heights_and_areas() {
        let f = ZeroFactory::paper().bandwidth_matched();
        let heights: Vec<u32> = f.stages.iter().map(|s| s.total_height()).collect();
        assert_eq!(heights, vec![24, 4, 2, 30, 42]);
        let areas: Vec<u32> = f.stages.iter().map(|s| s.total_area()).collect();
        assert_eq!(areas, vec![24, 28, 6, 30, 42]);
        // §4.4.1: crossbars 24 + 2x30 + 2x42 = 168; functional 130.
        assert_eq!(f.crossbar_area(), 168);
        assert_eq!(f.functional_area(), 130);
        assert_eq!(f.total_area(), 298);
    }

    #[test]
    fn throughput_is_ten_and_a_half_per_ms() {
        let f = ZeroFactory::paper().bandwidth_matched();
        assert!(
            (f.throughput_per_ms - 10.5).abs() < 0.05,
            "throughput {}",
            f.throughput_per_ms
        );
    }

    #[test]
    fn pipelining_matches_simple_factory_bandwidth_density() {
        // §5.3: the pipelined factory produces "virtually the same
        // encoded zero ancilla bandwidth per unit area" as the simple
        // factory (3.1/90 vs 10.5/298).
        let pipelined = ZeroFactory::paper().bandwidth_matched();
        let simple_density = 3.096 / 90.0;
        let ratio = pipelined.throughput_per_area() / simple_density;
        assert!((0.9..1.15).contains(&ratio), "density ratio {ratio}");
    }

    #[test]
    fn faster_measurement_shifts_the_bottleneck() {
        // A technology sanity check: with 10x faster measurement the
        // verification and correction stages speed up, but the CX
        // bottleneck (throughput driver) is unchanged.
        let mut t = LatencyTable::ion_trap();
        t.t_meas = 5.0;
        let f = ZeroFactory::with_latencies(t).bandwidth_matched();
        assert!((f.throughput_per_ms - 10.5).abs() < 0.05);
        // But fewer correction units are needed per verified block...
        // (the counts may shrink; the factory must stay consistent).
        assert!(f.total_area() <= 298);
    }
}
