//! Bandwidth matching and factory sizing (§4.4).
//!
//! "To achieve high resource utilization, we determine unit count by
//! matching bandwidth between successive stages" — each stage gets
//! enough units that its aggregate input bandwidth covers the upstream
//! stage's aggregate output, and crossbars between stages are sized by
//! the adjacent stage heights.

use crate::unit::FunctionalUnit;
use qods_phys::latency::LatencyTable;

/// A stage in a sized factory.
#[derive(Debug, Clone)]
pub struct SizedStage {
    /// The functional unit replicated in this stage.
    pub unit: FunctionalUnit,
    /// Number of units.
    pub count: u32,
}

impl SizedStage {
    /// Total stage height (units stack vertically).
    pub fn total_height(&self) -> u32 {
        self.count * self.unit.height
    }

    /// Total stage area.
    pub fn total_area(&self) -> u32 {
        self.count * self.unit.area
    }

    /// Aggregate input bandwidth (qubits/ms).
    pub fn bw_in(&self, t: &LatencyTable) -> f64 {
        f64::from(self.count) * self.unit.bw_in_per_ms(t)
    }

    /// Aggregate output bandwidth (qubits/ms).
    pub fn bw_out(&self, t: &LatencyTable) -> f64 {
        f64::from(self.count) * self.unit.bw_out_per_ms(t)
    }
}

/// Crossbar widths between stages: the first crossbar of the zero
/// factory funnels inward and needs one column; the rest are
/// bidirectional two-column designs (§4.4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrossbarColumns {
    /// One-column (funnel-in) crossbar.
    Single,
    /// Two-column bidirectional crossbar.
    Double,
}

impl CrossbarColumns {
    fn width(self) -> u32 {
        match self {
            CrossbarColumns::Single => 1,
            CrossbarColumns::Double => 2,
        }
    }
}

/// A fully sized factory.
#[derive(Debug, Clone)]
pub struct SizedFactory {
    /// Factory display name.
    pub name: &'static str,
    /// Stages in pipeline order. A stage may hold multiple unit types
    /// (e.g. CX + Cat Prep in the zero factory); see `stage_groups`.
    pub stages: Vec<SizedStage>,
    /// Which consecutive `stages` entries share one pipeline stage
    /// (and hence one crossbar boundary): indices into `stages`.
    pub stage_groups: Vec<Vec<usize>>,
    /// Crossbar column widths, one per boundary between stage groups.
    pub crossbars: Vec<CrossbarColumns>,
    /// Encoded ancillae per millisecond at the bottleneck.
    pub throughput_per_ms: f64,
}

impl SizedFactory {
    /// Total functional-unit area.
    pub fn functional_area(&self) -> u32 {
        self.stages.iter().map(SizedStage::total_area).sum()
    }

    /// Height of one stage group (sum of its stages' heights).
    fn group_height(&self, g: &[usize]) -> u32 {
        g.iter().map(|&i| self.stages[i].total_height()).sum()
    }

    /// Total crossbar area: each boundary crossbar spans the taller of
    /// the two adjacent stage groups.
    pub fn crossbar_area(&self) -> u32 {
        let mut area = 0;
        for (b, xb) in self.crossbars.iter().enumerate() {
            let h_prev = self.group_height(&self.stage_groups[b]);
            let h_next = self.group_height(&self.stage_groups[b + 1]);
            area += xb.width() * h_prev.max(h_next);
        }
        area
    }

    /// Total area in macroblocks.
    pub fn total_area(&self) -> u32 {
        self.functional_area() + self.crossbar_area()
    }

    /// Encoded-ancilla bandwidth per macroblock of factory area.
    pub fn throughput_per_area(&self) -> f64 {
        self.throughput_per_ms / f64::from(self.total_area())
    }
}

/// Units needed so that aggregate input bandwidth covers `demand`
/// qubits/ms.
pub fn units_to_cover(demand: f64, unit: &FunctionalUnit, t: &LatencyTable) -> u32 {
    let per = unit.bw_in_per_ms(t);
    assert!(per > 0.0, "unit {} has zero bandwidth", unit.name);
    (demand / per).ceil().max(1.0) as u32
}

/// Units needed so that aggregate *output* covers `demand` qubits/ms.
pub fn units_to_supply(demand: f64, unit: &FunctionalUnit, t: &LatencyTable) -> u32 {
    let per = unit.bw_out_per_ms(t);
    assert!(per > 0.0, "unit {} has zero bandwidth", unit.name);
    (demand / per).ceil().max(1.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_phys::latency::SymbolicLatency;

    fn toy_unit(qin: u32, qout: u32, stages: u32) -> FunctionalUnit {
        FunctionalUnit {
            name: "toy",
            latency: SymbolicLatency::new().two_q(10), // 100 us
            stages,
            qubits_in: qin,
            qubits_out: qout,
            success: 1.0,
            area: 3,
            height: 2,
        }
    }

    #[test]
    fn unit_counting_rounds_up() {
        let t = LatencyTable::ion_trap();
        let u = toy_unit(1, 1, 1); // 10 qubits/ms
        assert_eq!(units_to_cover(25.0, &u, &t), 3);
        assert_eq!(units_to_cover(30.0, &u, &t), 3);
        assert_eq!(units_to_cover(30.1, &u, &t), 4);
        assert_eq!(units_to_cover(0.0, &u, &t), 1); // at least one
    }

    #[test]
    fn crossbar_spans_taller_neighbor() {
        let f = SizedFactory {
            name: "toy",
            stages: vec![
                SizedStage {
                    unit: toy_unit(1, 1, 1),
                    count: 5,
                }, // h = 10
                SizedStage {
                    unit: toy_unit(1, 1, 1),
                    count: 2,
                }, // h = 4
            ],
            stage_groups: vec![vec![0], vec![1]],
            crossbars: vec![CrossbarColumns::Double],
            throughput_per_ms: 1.0,
        };
        assert_eq!(f.crossbar_area(), 2 * 10);
        assert_eq!(f.functional_area(), 7 * 3);
        assert_eq!(f.total_area(), 41);
    }
}
