//! Functional-unit descriptors (the rows of Tables 5 and 7).

use qods_phys::latency::{LatencyTable, SymbolicLatency};

/// One pipelined functional unit: its latency, internal pipelining,
/// per-initiation qubit flow, and footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalUnit {
    /// Display name (matches the paper's table rows).
    pub name: &'static str,
    /// Symbolic latency (Table 5/7, column 2).
    pub latency: SymbolicLatency,
    /// Internal pipeline stages: a new initiation can begin every
    /// `latency / stages`.
    pub stages: u32,
    /// Physical qubits consumed per initiation.
    pub qubits_in: u32,
    /// Physical qubits emitted per initiation (before any success
    /// derating).
    pub qubits_out: u32,
    /// Fraction of initiations whose outputs survive (verification
    /// success; 1.0 for most units).
    pub success: f64,
    /// Area in macroblocks.
    pub area: u32,
    /// Height in macroblocks (for crossbar sizing).
    pub height: u32,
}

impl FunctionalUnit {
    /// Latency in microseconds.
    pub fn latency_us(&self, t: &LatencyTable) -> f64 {
        self.latency.eval(t)
    }

    /// Initiation interval in microseconds.
    pub fn initiation_interval_us(&self, t: &LatencyTable) -> f64 {
        self.latency_us(t) / f64::from(self.stages)
    }

    /// Input bandwidth (qubits/ms) of one unit.
    pub fn bw_in_per_ms(&self, t: &LatencyTable) -> f64 {
        f64::from(self.qubits_in) / self.initiation_interval_us(t) * 1000.0
    }

    /// Output bandwidth (qubits/ms) of one unit, after success
    /// derating.
    pub fn bw_out_per_ms(&self, t: &LatencyTable) -> f64 {
        f64::from(self.qubits_out) * self.success / self.initiation_interval_us(t) * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "CX Stage",
            latency: SymbolicLatency::new().two_q(3).turn(6).mov(5),
            stages: 3,
            qubits_in: 7,
            qubits_out: 7,
            success: 1.0,
            area: 28,
            height: 4,
        }
    }

    #[test]
    fn cx_stage_matches_table5() {
        let t = LatencyTable::ion_trap();
        let u = unit();
        assert_eq!(u.latency_us(&t), 95.0);
        assert!((u.bw_in_per_ms(&t) - 221.05).abs() < 0.1);
        assert!((u.bw_out_per_ms(&t) - 221.05).abs() < 0.1);
    }

    #[test]
    fn success_derates_output_only() {
        let t = LatencyTable::ion_trap();
        let mut u = unit();
        u.success = 0.5;
        assert!((u.bw_in_per_ms(&t) - 221.05).abs() < 0.1);
        assert!((u.bw_out_per_ms(&t) - 110.53).abs() < 0.1);
    }
}
