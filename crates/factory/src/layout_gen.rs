//! Concrete macroblock layouts for the factories, cross-checked
//! against the published areas.
//!
//! The paper's layouts were produced by the authors' CAD tool ([8]);
//! we rebuild them from the figures' descriptions. The simple factory
//! (Fig 11) is three rows of ten gate locations with communication
//! rows between and around them: a 9 x 10 grid, 90 macroblocks.

use qods_layout::grid::Grid;
use qods_layout::macroblock::{Dir, Macroblock, MacroblockKind};

/// Builds the Fig 11 simple-factory layout (9 rows x 10 columns).
///
/// Row pattern (top to bottom): access channel, gate row, channel,
/// channel, gate row, channel, channel, gate row, access channel.
/// Horizontal channel rows are connected to the vertical gate columns
/// through four-way intersections at the row ends.
pub fn simple_factory_layout() -> Grid {
    let rows = 9;
    let cols = 10;
    let mut g = Grid::new(rows, cols);
    for r in 0..rows {
        let is_gate_row = r == 1 || r == 4 || r == 7;
        for c in 0..cols {
            let block = if is_gate_row {
                // Gate locations in a vertical channel (qubits enter
                // from the communication rows above/below).
                Macroblock::new(MacroblockKind::StraightChannelGate)
            } else {
                // Communication rows: intersections so qubits can both
                // travel along the row and drop into the gate columns.
                Macroblock::new(MacroblockKind::FourWayIntersection)
            };
            let _ = c;
            g.place(r, c, block);
        }
    }
    g
}

/// A straight vertical channel column of the given height, used as the
/// crossbar column primitive in pipelined factory layouts.
pub fn crossbar_column(height: usize) -> Grid {
    let mut g = Grid::new(height, 1);
    for r in 0..height {
        g.place(r, 0, Macroblock::new(MacroblockKind::StraightChannel));
    }
    g
}

/// Checks that a gate row's ports line up with its neighbors: every
/// gate block must be reachable from the factory edge.
pub fn all_gates_reachable(g: &Grid) -> bool {
    let t = qods_phys::latency::LatencyTable::ion_trap();
    let start = (0usize, 0usize);
    if g.at(start.0, start.1).is_none() {
        return false;
    }
    g.gate_locations()
        .iter()
        .all(|&(r, c)| qods_layout::route::route(g, start, (r, c), &t).is_some())
}

/// Counts external ports (open channel ends on the grid boundary) —
/// the factory's input/output ports. Qalypso (§5.3) relies on factories
/// having concentrated ports near the data region.
pub fn external_ports(g: &Grid) -> usize {
    let mut n = 0;
    for r in 0..g.rows() {
        for c in 0..g.cols() {
            let Some(b) = g.at(r, c) else { continue };
            for d in b.ports() {
                if g.neighbor(r, c, d).is_none() {
                    n += 1;
                }
            }
        }
    }
    n
}

/// Ports on one chosen side only (the "output port" count facing the
/// data region in a Qalypso tile).
pub fn ports_on_side(g: &Grid, side: Dir) -> usize {
    let mut n = 0;
    for r in 0..g.rows() {
        for c in 0..g.cols() {
            let Some(b) = g.at(r, c) else { continue };
            if b.has_port(side) && g.neighbor(r, c, side).is_none() {
                n += 1;
            }
        }
    }
    n
}

/// Builds a concrete macroblock layout for a sized pipelined factory
/// (Fig 12's floor plan): stage groups as columns of functional-unit
/// blocks, separated by crossbar columns whose heights span the taller
/// neighbor. The generated layout's macroblock count reproduces the
/// factory's area formula exactly, giving the area model a geometric
/// cross-check.
pub fn pipelined_factory_layout(factory: &crate::pipeline::SizedFactory) -> Grid {
    // Column widths: each stage group gets the max unit *width* needed
    // to hold its area (area = width x height per unit; our units are
    // modeled as width = area / height columns of blocks).
    let group_heights: Vec<usize> = factory
        .stage_groups
        .iter()
        .map(|g| {
            g.iter()
                .map(|&i| factory.stages[i].total_height() as usize)
                .sum()
        })
        .collect();
    let total_height = *group_heights.iter().max().expect("non-empty factory");

    // Total width: per group, ceil(area / height) columns; plus
    // crossbar widths between groups.
    let mut group_widths = Vec::new();
    for (gi, g) in factory.stage_groups.iter().enumerate() {
        let area: usize = g
            .iter()
            .map(|&i| factory.stages[i].total_area() as usize)
            .sum();
        let h = group_heights[gi].max(1);
        group_widths.push(area.div_ceil(h));
    }
    let xbar_widths: Vec<usize> = factory
        .crossbars
        .iter()
        .map(|x| match x {
            crate::pipeline::CrossbarColumns::Single => 1,
            crate::pipeline::CrossbarColumns::Double => 2,
        })
        .collect();

    let total_width: usize = group_widths.iter().sum::<usize>() + xbar_widths.iter().sum::<usize>();
    let mut grid = Grid::new(total_height, total_width);

    let mut col = 0usize;
    for (gi, _) in factory.stage_groups.iter().enumerate() {
        // Functional blocks: place exactly `area` blocks in this
        // group's columns, top-aligned (gate channels).
        let mut remaining: usize = factory.stage_groups[gi]
            .iter()
            .map(|&i| factory.stages[i].total_area() as usize)
            .sum();
        for c in col..col + group_widths[gi] {
            for r in 0..group_heights[gi].min(total_height) {
                if remaining == 0 {
                    break;
                }
                grid.place(r, c, Macroblock::new(MacroblockKind::StraightChannelGate));
                remaining -= 1;
            }
        }
        col += group_widths[gi];
        // Crossbar column(s) after this group (if any).
        if gi < xbar_widths.len() {
            let xh = group_heights[gi]
                .max(*group_heights.get(gi + 1).unwrap_or(&0))
                .min(total_height);
            for c in col..col + xbar_widths[gi] {
                for r in 0..xh {
                    grid.place(r, c, Macroblock::new(MacroblockKind::StraightChannel));
                }
            }
            col += xbar_widths[gi];
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_factory_is_90_macroblocks() {
        let g = simple_factory_layout();
        assert_eq!(g.area(), 90);
        assert_eq!(g.rows() * g.cols(), 90);
    }

    #[test]
    fn simple_factory_has_30_gate_locations() {
        // Three rows of ten qubit positions (7 encode + 3 verify).
        let g = simple_factory_layout();
        assert_eq!(g.gate_locations().len(), 30);
    }

    #[test]
    fn simple_factory_is_connected() {
        let g = simple_factory_layout();
        assert!(g.validate().is_ok());
        assert!(all_gates_reachable(&g));
    }

    #[test]
    fn crossbar_column_area_matches_height() {
        assert_eq!(crossbar_column(24).area(), 24);
    }

    #[test]
    fn simple_factory_has_external_ports() {
        let g = simple_factory_layout();
        assert!(external_ports(&g) > 0);
    }

    #[test]
    fn pipelined_zero_layout_area_matches_model() {
        let f = crate::zero::ZeroFactory::paper().bandwidth_matched();
        let g = pipelined_factory_layout(&f);
        assert_eq!(g.area(), f.total_area() as usize, "geometric area mismatch");
    }

    #[test]
    fn pipelined_pi8_layout_area_matches_model() {
        let f = crate::pi8::Pi8Factory::paper().bandwidth_matched();
        let g = pipelined_factory_layout(&f);
        assert_eq!(g.area(), f.total_area() as usize);
    }

    #[test]
    fn pipelined_layout_has_concentrated_output_side() {
        // §5.3: the factory's output port sits on one side, near the
        // data region.
        let f = crate::zero::ZeroFactory::paper().bandwidth_matched();
        let g = pipelined_factory_layout(&f);
        assert!(external_ports(&g) > 0);
    }
}
