//! The encoded pi/8 ancilla factory (§4.4.2, Tables 7-8).
//!
//! Turns encoded zeros (supplied by zero factories) into encoded pi/8
//! ancillae via the Fig 5b gadget, in four pipeline stages. Only half
//! the qubits consumed by the transversal stage come from the cat-prep
//! stage; the other half are the encoded-zero feed.

use crate::pipeline::{units_to_cover, CrossbarColumns, SizedFactory, SizedStage};
use crate::unit::FunctionalUnit;
use qods_phys::latency::{LatencyTable, SymbolicLatency};

/// The pi/8 factory specification.
#[derive(Debug, Clone)]
pub struct Pi8Factory {
    latency: LatencyTable,
}

impl Pi8Factory {
    /// The paper's configuration.
    pub fn paper() -> Self {
        Pi8Factory {
            latency: LatencyTable::ion_trap(),
        }
    }

    /// A configuration with custom physical latencies.
    pub fn with_latencies(latency: LatencyTable) -> Self {
        Pi8Factory { latency }
    }

    /// Table 7 row: 7-qubit cat state preparation.
    pub fn cat_prep_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Cat State Prepare",
            latency: SymbolicLatency::new().two_q(7).turn(14).mov(8),
            stages: 1,
            qubits_in: 7,
            qubits_out: 7,
            success: 1.0,
            area: 12,
            height: 6,
        }
    }

    /// Table 7 row: the transversal CX/CS/CZ/pi-8 stage (14 qubits per
    /// initiation: the cat plus the encoded zero).
    pub fn transversal_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Transversal CX/CS/CZ/pi8",
            latency: SymbolicLatency::new().two_q(3).turn(2).mov(3),
            stages: 1,
            qubits_in: 14,
            qubits_out: 14,
            success: 1.0,
            area: 7,
            height: 7,
        }
    }

    /// Table 7 row: decode (plus store); 14 qubits in, 8 out (the
    /// encoded block plus the decoded readout qubit).
    pub fn decode_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "Decode (plus Store)",
            latency: SymbolicLatency::new().two_q(7).turn(14).mov(8),
            stages: 1,
            qubits_in: 14,
            qubits_out: 8,
            success: 1.0,
            area: 19,
            height: 13,
        }
    }

    /// Table 7 row: H / measure / conditional transversal Z.
    pub fn readout_unit() -> FunctionalUnit {
        FunctionalUnit {
            name: "H/M/Transversal Z",
            latency: SymbolicLatency::new().meas(1).one_q(2).turn(2).mov(2),
            stages: 1,
            qubits_in: 8,
            qubits_out: 7,
            success: 1.0,
            area: 8,
            height: 8,
        }
    }

    /// All four Table 7 stages, in pipeline order.
    pub fn units() -> Vec<FunctionalUnit> {
        vec![
            Self::cat_prep_unit(),
            Self::transversal_unit(),
            Self::decode_unit(),
            Self::readout_unit(),
        ]
    }

    /// Sizes the factory (Table 8): one transversal unit; as many
    /// cat-prep units as can feed its cat half without overshooting;
    /// downstream stages matched to the realized flow.
    pub fn bandwidth_matched(&self) -> SizedFactory {
        let t = &self.latency;
        let cat = Self::cat_prep_unit();
        let trans = Self::transversal_unit();
        let decode = Self::decode_unit();
        let readout = Self::readout_unit();

        let trans_count = 1u32;
        // Only half of the transversal stage's input comes from cat
        // prep (the other half is the encoded-zero feed): saturate from
        // below so the crossbar never congests.
        let cat_capacity = f64::from(trans_count) * trans.bw_in_per_ms(t) / 2.0;
        let cat_count = (cat_capacity / cat.bw_out_per_ms(t)).floor().max(1.0) as u32;
        let realized_flow = 2.0 * f64::from(cat_count) * cat.bw_out_per_ms(t);
        let decode_count = units_to_cover(realized_flow, &decode, t);
        let decode_out = f64::from(decode_count) * decode.bw_out_per_ms(t);
        let readout_count = units_to_cover(decode_out, &readout, t);

        // Each 7-qubit cat state yields one pi/8 ancilla; cat prep is
        // the bottleneck.
        let throughput = f64::from(cat_count) * cat.bw_out_per_ms(t) / 7.0;

        SizedFactory {
            name: "pi/8 ancilla factory",
            stages: vec![
                SizedStage {
                    unit: cat,
                    count: cat_count,
                },
                SizedStage {
                    unit: trans,
                    count: trans_count,
                },
                SizedStage {
                    unit: decode,
                    count: decode_count,
                },
                SizedStage {
                    unit: readout,
                    count: readout_count,
                },
            ],
            stage_groups: vec![vec![0], vec![1], vec![2], vec![3]],
            crossbars: vec![
                CrossbarColumns::Double,
                CrossbarColumns::Double,
                CrossbarColumns::Double,
            ],
            throughput_per_ms: throughput,
        }
    }

    /// Encoded zeros consumed per emitted pi/8 ancilla (the gadget
    /// input; §5.1 sizes supply factories with this).
    pub fn zeros_per_ancilla() -> f64 {
        1.0
    }
}

impl Default for Pi8Factory {
    fn default() -> Self {
        Pi8Factory::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_latencies_and_bandwidths() {
        let t = LatencyTable::ion_trap();
        let rows: Vec<(FunctionalUnit, f64, f64, f64)> = vec![
            (Pi8Factory::cat_prep_unit(), 218.0, 32.1, 32.1),
            (Pi8Factory::transversal_unit(), 53.0, 264.2, 264.2),
            (Pi8Factory::decode_unit(), 218.0, 64.2, 36.7),
            (Pi8Factory::readout_unit(), 74.0, 108.1, 94.6),
        ];
        for (u, lat, bin, bout) in rows {
            assert_eq!(u.latency_us(&t), lat, "{} latency", u.name);
            assert!(
                (u.bw_in_per_ms(&t) - bin).abs() < 0.15,
                "{} bw_in {}",
                u.name,
                u.bw_in_per_ms(&t)
            );
            assert!(
                (u.bw_out_per_ms(&t) - bout).abs() < 0.15,
                "{} bw_out {}",
                u.name,
                u.bw_out_per_ms(&t)
            );
        }
    }

    #[test]
    fn table8_unit_counts_heights_areas() {
        let f = Pi8Factory::paper().bandwidth_matched();
        let rows: Vec<(&str, u32, u32, u32)> = f
            .stages
            .iter()
            .map(|s| (s.unit.name, s.count, s.total_height(), s.total_area()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Cat State Prepare", 4, 24, 48),
                ("Transversal CX/CS/CZ/pi8", 1, 7, 7),
                ("Decode (plus Store)", 4, 52, 76),
                ("H/M/Transversal Z", 2, 16, 16),
            ]
        );
    }

    #[test]
    fn total_area_is_403() {
        let f = Pi8Factory::paper().bandwidth_matched();
        // §4.4.2: crossbars 2x24 + 2x52 + 2x52 = 256; functional 147.
        assert_eq!(f.crossbar_area(), 256);
        assert_eq!(f.functional_area(), 147);
        assert_eq!(f.total_area(), 403);
    }

    #[test]
    fn throughput_is_18_3_per_ms() {
        let f = Pi8Factory::paper().bandwidth_matched();
        assert!(
            (f.throughput_per_ms - 18.3).abs() < 0.1,
            "throughput {}",
            f.throughput_per_ms
        );
    }
}
