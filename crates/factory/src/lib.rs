//! # qods-factory — ancilla factories (§4.3-§4.4)
//!
//! Ancilla factories consume stateless physical qubits and produce a
//! steady stream of encoded ancillae. This crate models:
//!
//! * the **simple factory** (Fig 11): one verify-and-correct prepare
//!   per 323 us in 90 macroblocks (3.1 encoded zeros / ms);
//! * the **fully pipelined encoded-zero factory** (Figs 12-13,
//!   Tables 5-6): five functional unit types, bandwidth-matched unit
//!   counts {24, 1, 1, 3, 2}, 168 macroblocks of crossbar + 130 of
//!   functional units = 298 total, 10.5 encoded zeros / ms;
//! * the **pi/8 factory** (Tables 7-8): four stages, counts
//!   {4, 1, 4, 2}, 403 macroblocks, 18.3 encoded pi/8 ancillae / ms
//!   (fed by zero factories, accounted in [`supply`]);
//! * concrete macroblock layouts for these factories
//!   ([`layout_gen`]), cross-checked against the published areas.
//!
//! Every number above is *computed* from the functional-unit
//! definitions and the bandwidth-matching solver, then asserted
//! against the paper's values in tests.
//!
//! # Example
//!
//! ```
//! use qods_factory::zero::ZeroFactory;
//!
//! let sized = ZeroFactory::paper().bandwidth_matched();
//! assert_eq!(sized.total_area(), 298);
//! assert!((sized.throughput_per_ms - 10.5).abs() < 0.05);
//! ```

pub mod layout_gen;
pub mod pi8;
pub mod pipeline;
pub mod simple;
pub mod supply;
pub mod unit;
pub mod zero;

pub use pi8::Pi8Factory;
pub use pipeline::SizedFactory;
pub use simple::SimpleFactory;
pub use supply::FactoryFarm;
pub use unit::FunctionalUnit;
pub use zero::ZeroFactory;
