//! The simple (non-pipelined) ancilla factory of Fig 11 (§4.3).
//!
//! Three rows of gate locations — one per encoded block of the
//! verify-and-correct circuit — with communication rows between them.
//! Each row holds ten physical qubits (seven to encode plus three for
//! verification). One hand-optimized preparation takes
//!
//! ```text
//! t_prep + 2 t_meas + 6 t_2q + 2 t_1q + 8 t_turn + 30 t_move = 323 us
//! ```
//!
//! in 90 macroblocks, for 3.1 encoded ancillae per millisecond.

use qods_phys::latency::{LatencyTable, SymbolicLatency};

/// The Fig 11 simple factory.
#[derive(Debug, Clone)]
pub struct SimpleFactory {
    latency: LatencyTable,
}

impl SimpleFactory {
    /// The paper's configuration.
    pub fn paper() -> Self {
        SimpleFactory {
            latency: LatencyTable::ion_trap(),
        }
    }

    /// A configuration with custom physical latencies.
    pub fn with_latencies(latency: LatencyTable) -> Self {
        SimpleFactory { latency }
    }

    /// The hand-optimized schedule's symbolic latency (§4.3).
    pub fn prep_latency_symbolic() -> SymbolicLatency {
        SymbolicLatency::new()
            .prep(1)
            .meas(2)
            .two_q(6)
            .one_q(2)
            .turn(8)
            .mov(30)
    }

    /// Single-preparation latency in microseconds (323 in ion trap).
    pub fn prep_latency_us(&self) -> f64 {
        Self::prep_latency_symbolic().eval(&self.latency)
    }

    /// Throughput in encoded ancillae per millisecond (one ancilla in
    /// flight at a time).
    pub fn throughput_per_ms(&self) -> f64 {
        1000.0 / self.prep_latency_us()
    }

    /// Area in macroblocks (from the generated layout; 90).
    pub fn area(&self) -> u32 {
        crate::layout_gen::simple_factory_layout().area() as u32
    }

    /// Encoded-ancilla bandwidth per macroblock.
    pub fn throughput_per_area(&self) -> f64 {
        self.throughput_per_ms() / f64::from(self.area())
    }
}

impl Default for SimpleFactory {
    fn default() -> Self {
        SimpleFactory::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_numbers() {
        let f = SimpleFactory::paper();
        assert_eq!(f.prep_latency_us(), 323.0);
        assert_eq!(f.area(), 90);
        // §4.3: "total latency of 323 us with a throughput of 3.1
        // encoded ancillae per millisecond".
        assert!((f.throughput_per_ms() - 3.1).abs() < 0.01);
    }

    #[test]
    fn faster_prep_raises_throughput() {
        let mut t = LatencyTable::ion_trap();
        t.t_prep = 1.0;
        let f = SimpleFactory::with_latencies(t);
        assert!(f.throughput_per_ms() > 3.1);
    }
}
