//! Factory farms: sizing factory area for a requested ancilla
//! bandwidth, including the zero-factory supply chains feeding pi/8
//! factories (§5.1, Table 9).

use crate::pi8::Pi8Factory;
use crate::simple::SimpleFactory;
use crate::zero::ZeroFactory;

/// Which factory design produces the encoded zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZeroFactoryKind {
    /// Fig 11's 90-macroblock serial design (3.1 anc/ms).
    Simple,
    /// §4.4.1's 298-macroblock pipelined design (10.5 anc/ms).
    Pipelined,
}

/// A farm of factories meeting a bandwidth demand.
#[derive(Debug, Clone, Copy)]
pub struct FactoryFarm {
    /// Encoded-zero bandwidth for QEC (per ms).
    pub zero_bandwidth: f64,
    /// Encoded pi/8 bandwidth (per ms).
    pub pi8_bandwidth: f64,
    /// Area of zero factories serving QEC directly.
    pub qec_factory_area: f64,
    /// Area of pi/8 encoders plus their supplying zero factories.
    pub pi8_factory_area: f64,
}

impl FactoryFarm {
    /// Sizes a farm for the requested bandwidths. Areas are fractional
    /// (factories can be shared between demands), exactly as Table 9
    /// reports them.
    pub fn size_for(zero_bandwidth: f64, pi8_bandwidth: f64, kind: ZeroFactoryKind) -> FactoryFarm {
        assert!(
            zero_bandwidth >= 0.0 && pi8_bandwidth >= 0.0,
            "bandwidths must be non-negative"
        );
        let (zero_rate, zero_area) = match kind {
            ZeroFactoryKind::Simple => {
                let f = SimpleFactory::paper();
                (f.throughput_per_ms(), f64::from(f.area()))
            }
            ZeroFactoryKind::Pipelined => {
                let f = ZeroFactory::paper().bandwidth_matched();
                (f.throughput_per_ms, f64::from(f.total_area()))
            }
        };
        let pi8 = Pi8Factory::paper().bandwidth_matched();
        let pi8_rate = pi8.throughput_per_ms;
        let pi8_area = f64::from(pi8.total_area());

        let qec_factory_area = zero_bandwidth / zero_rate * zero_area;
        // pi/8 encoders plus the zero factories feeding them.
        let encoder_area = pi8_bandwidth / pi8_rate * pi8_area;
        let feed_zero_bw = pi8_bandwidth * Pi8Factory::zeros_per_ancilla();
        let feed_area = feed_zero_bw / zero_rate * zero_area;

        FactoryFarm {
            zero_bandwidth,
            pi8_bandwidth,
            qec_factory_area,
            pi8_factory_area: encoder_area + feed_area,
        }
    }

    /// Total factory area (both kinds).
    pub fn total_factory_area(&self) -> f64 {
        self.qec_factory_area + self.pi8_factory_area
    }

    /// Inverse sizing: the zero bandwidth a given area can sustain
    /// when split between QEC zeros and a matched pi/8 chain with the
    /// given pi8:zero demand ratio.
    pub fn bandwidth_for_area(
        total_area: f64,
        pi8_to_zero_ratio: f64,
        kind: ZeroFactoryKind,
    ) -> FactoryFarm {
        assert!(total_area >= 0.0, "area must be non-negative");
        // Solve zero_bw from: area(zero_bw) + area_pi8(ratio*zero_bw)
        // = total. All areas are linear in bandwidth, so one probe
        // suffices.
        let probe = FactoryFarm::size_for(1.0, pi8_to_zero_ratio, kind);
        let area_per_unit_bw = probe.total_factory_area();
        let zero_bw = if area_per_unit_bw > 0.0 {
            total_area / area_per_unit_bw
        } else {
            0.0
        };
        FactoryFarm::size_for(zero_bw, pi8_to_zero_ratio * zero_bw, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 9's factory-area columns, from the paper's Table 3
    /// bandwidths. The paper rounds intermediate values; we accept 1%.
    #[test]
    fn table9_factory_areas_from_paper_bandwidths() {
        let rows = [
            // (zero bw, pi8 bw, qec area, pi8 area)
            (34.8, 7.0, 986.9, 354.7),
            (306.1, 62.7, 8682.2, 3154.4),
            (36.8, 8.6, 1043.5, 433.7),
        ];
        for (zbw, pbw, qec, pi8) in rows {
            let farm = FactoryFarm::size_for(zbw, pbw, ZeroFactoryKind::Pipelined);
            let qec_err = (farm.qec_factory_area - qec).abs() / qec;
            let pi8_err = (farm.pi8_factory_area - pi8).abs() / pi8;
            assert!(
                qec_err < 0.01,
                "QEC area {} vs paper {qec}",
                farm.qec_factory_area
            );
            assert!(
                pi8_err < 0.015,
                "pi/8 area {} vs paper {pi8}",
                farm.pi8_factory_area
            );
        }
    }

    #[test]
    fn inverse_sizing_roundtrips() {
        let farm = FactoryFarm::size_for(50.0, 10.0, ZeroFactoryKind::Pipelined);
        let back = FactoryFarm::bandwidth_for_area(
            farm.total_factory_area(),
            10.0 / 50.0,
            ZeroFactoryKind::Pipelined,
        );
        assert!((back.zero_bandwidth - 50.0).abs() < 1e-9);
        assert!((back.pi8_bandwidth - 10.0).abs() < 1e-9);
    }

    #[test]
    fn simple_factories_need_more_area_for_same_bandwidth() {
        let pipe = FactoryFarm::size_for(34.8, 7.0, ZeroFactoryKind::Pipelined);
        let simple = FactoryFarm::size_for(34.8, 7.0, ZeroFactoryKind::Simple);
        // §5.3: bandwidth per area is nearly equal, so the two should
        // be close (within ~10%), with the simple design slightly
        // ahead on pure density.
        let ratio = simple.qec_factory_area / pipe.qec_factory_area;
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zero_demand_needs_zero_area() {
        let farm = FactoryFarm::size_for(0.0, 0.0, ZeroFactoryKind::Pipelined);
        assert_eq!(farm.total_factory_area(), 0.0);
    }
}
