//! # qods-bench — benchmark harness for the speed-of-data reproduction
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p qods-bench --bin repro --release`)
//!   drives the experiment registry: `--list` enumerates experiments,
//!   bare ids run them individually, and a full run regenerates every
//!   table and figure in parallel, prints them in the paper's layout,
//!   and writes machine-readable results (JSON and per-figure CSV)
//!   under `results/`;
//! * the **Criterion benches** (`cargo bench`), one per table/figure,
//!   measure how long each regeneration takes and print the headline
//!   reproduced numbers once per run.
//!
//! The `repro --bench-json` / `--bench-check*` perf smokes (module
//! [`perf`]) time the Fig 4 Monte-Carlo panel, the Fig 15
//! architecture sweep, and the cold-vs-warm-disk kernel compile, and
//! maintain the committed `BENCH_montecarlo.json` / `BENCH_sweep.json`
//! / `BENCH_compile.json` baselines that CI gates on.
//!
//! Experiment ids match the table in [`qods_core`]'s crate docs:
//! `table1`..`table9`, `sec33`, `fig4`, `fig6`, `fig7`, `fig8`,
//! `fig11`, `fig15`, `widthsweep`, plus aliases like `headline`.

pub mod perf;

use qods_core::experiment::ExperimentRecord;
use qods_core::output::Series;

use serde::Serialize;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes a figure series to a CSV file (x,y per line, one file per
/// series label).
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_series_csv(dir: &Path, figure: &str, series: &[Series]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    for s in series {
        let safe = qods_core::output::csv_safe_stem(&s.label);
        let mut f = fs::File::create(dir.join(format!("{figure}_{safe}.csv")))?;
        writeln!(f, "x,y")?;
        for p in &s.points {
            writeln!(f, "{},{}", p.x, p.y)?;
        }
    }
    Ok(())
}

/// Writes any serializable result (the full
/// [`qods_core::study::PaperReproduction`], a single
/// [`ExperimentRecord`], or a whole record list) as pretty JSON.
///
/// # Errors
///
/// Returns I/O or serialization errors.
pub fn write_json<T: Serialize>(path: &Path, out: &T) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(out).map_err(std::io::Error::other)?;
    fs::write(path, json)
}

/// Writes every figure CSV a set of records exports.
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_record_csvs(dir: &Path, records: &[ExperimentRecord]) -> std::io::Result<()> {
    for r in records {
        for (figure, series) in r.output.csv_series(&r.id) {
            write_series_csv(dir, &figure, &series)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_core::experiment::StudyContext;
    use qods_core::registry::Registry;
    use qods_core::study::{Study, StudyConfig};

    #[test]
    fn csv_and_json_roundtrip() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let dir = std::env::temp_dir().join("qods_bench_test");
        write_series_csv(&dir, "fig7", &out.fig7).expect("csv");
        write_json(&dir.join("repro.json"), &out).expect("json");
        let json = std::fs::read_to_string(dir.join("repro.json")).expect("read");
        assert!(json.contains("table9"));
    }

    #[test]
    fn record_csvs_cover_all_figures() {
        let ctx = StudyContext::new(StudyConfig::smoke());
        let registry = Registry::paper();
        let records = registry
            .run_selected(&["fig7", "fig8", "fig15"], &ctx)
            .expect("known ids");
        let dir = std::env::temp_dir().join("qods_bench_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        write_record_csvs(&dir, &records).expect("csvs");
        let names: Vec<String> = std::fs::read_dir(&dir)
            .expect("dir")
            .map(|e| e.expect("entry").file_name().to_string_lossy().into_owned())
            .collect();
        for prefix in ["fig7_", "fig8_", "fig15_"] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "no CSV with prefix {prefix} in {names:?}"
            );
        }
    }
}
