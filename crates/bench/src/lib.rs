//! # qods-bench — benchmark harness for the speed-of-data reproduction
//!
//! Two entry points:
//!
//! * the **`repro` binary** (`cargo run -p qods-bench --bin repro --release`)
//!   regenerates every table and figure of the paper, prints them in
//!   the paper's layout, and writes machine-readable results (JSON and
//!   per-figure CSV) under `results/`;
//! * the **Criterion benches** (`cargo bench`), one per table/figure,
//!   measure how long each regeneration takes and print the headline
//!   reproduced numbers once per run.
//!
//! Experiment ids match DESIGN.md §3: `table1`..`table9`, `fig4`,
//! `fig6`, `fig7`, `fig8`, `fig11`, `fig15`, `headline`.

use qods_core::study::{PaperReproduction, Series};
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Writes a figure series to a CSV file (x,y per line, one file per
/// series label).
///
/// # Errors
///
/// Returns I/O errors from file creation or writing.
pub fn write_series_csv(dir: &Path, figure: &str, series: &[Series]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    for s in series {
        let safe: String = s
            .label
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let mut f = fs::File::create(dir.join(format!("{figure}_{safe}.csv")))?;
        writeln!(f, "x,y")?;
        for (x, y) in &s.points {
            writeln!(f, "{x},{y}")?;
        }
    }
    Ok(())
}

/// Writes the full reproduction as pretty JSON.
///
/// # Errors
///
/// Returns I/O or serialization errors.
pub fn write_json(path: &Path, out: &PaperReproduction) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let json = serde_json::to_string_pretty(out)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::Other, e))?;
    fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qods_core::study::{Study, StudyConfig};

    #[test]
    fn csv_and_json_roundtrip() {
        let out = Study::new(StudyConfig::smoke()).run_all();
        let dir = std::env::temp_dir().join("qods_bench_test");
        write_series_csv(&dir, "fig7", &out.fig7).expect("csv");
        write_json(&dir.join("repro.json"), &out).expect("json");
        let json = std::fs::read_to_string(dir.join("repro.json")).expect("read");
        assert!(json.contains("table9"));
    }
}
