//! Machine-readable performance smokes: the Fig 4 Monte-Carlo panel
//! (`BENCH_montecarlo.json`), the Fig 15 architecture sweep
//! (`BENCH_sweep.json`), the staged kernel compile
//! (`BENCH_compile.json`), and the concurrent TCP serving layer
//! (`BENCH_serve.json`), so the perf trajectory of every hot path is
//! tracked across PRs instead of living in commit messages.
//!
//! The committed JSON files at the repo root double as perf baselines:
//! CI re-runs each smoke in quick mode and fails when machine-
//! normalized throughput regresses more than 2x against them (see
//! [`check_against`] / [`check_sweep_against`]). Each report includes
//! a frozen `reference` block measured on the engine it replaced with
//! this same harness, so the before/after of the rewrites stays
//! visible.

use qods_core::prelude::{
    area_sweep_in, evaluate_prep, log_areas, speedup_summary_from_curves, Arch, Circuit,
    ErrorModel, PrepStrategy, SimContext,
};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Trials per strategy for the full (committed-baseline) smoke.
pub const SMOKE_TRIALS: u64 = 200_000;
/// Trials per strategy for the quick (CI) smoke.
pub const QUICK_TRIALS: u64 = 40_000;
/// Timing repetitions; the best (minimum) wall time is kept, which is
/// the standard noise filter on shared hosts.
pub const SMOKE_REPS: u32 = 5;
/// Seed for every timed run (results are deterministic per seed).
pub const SMOKE_SEED: u64 = 7;

/// One timed panel entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McBenchEntry {
    /// Strategy name (paper's Fig 4 label).
    pub strategy: String,
    /// Trials run per repetition.
    pub trials: u64,
    /// Best wall time over the repetitions, in milliseconds.
    pub wall_ms: f64,
    /// Trials per second at the best wall time.
    pub trials_per_sec: f64,
    /// Measured uncorrectable rate (sanity anchor: must not drift when
    /// only performance work happens).
    pub error_rate: f64,
    /// Measured discard rate.
    pub discard_rate: f64,
}

/// Frozen numbers from the engine this one replaced, for before/after
/// comparisons inside the same file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McReference {
    /// Provenance of the frozen numbers.
    pub note: String,
    /// Per-strategy best wall times (same harness shape), milliseconds.
    pub per_strategy_ms: Vec<f64>,
    /// Panel total (sum of per-strategy bests), milliseconds.
    pub panel_total_ms: f64,
}

/// The full report written to `BENCH_montecarlo.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McBenchReport {
    /// Format tag.
    pub schema: String,
    /// Trials per strategy per repetition.
    pub trials_per_strategy: u64,
    /// Timing repetitions (best kept).
    pub reps: u32,
    /// Worker threads (1 = the single-thread speedup criterion).
    pub threads: usize,
    /// One entry per Fig 4 strategy, paper order.
    pub panel: Vec<McBenchEntry>,
    /// Sum of best wall times, milliseconds.
    pub panel_total_ms: f64,
    /// Panel throughput: total trials / panel_total, per second.
    pub panel_trials_per_sec: f64,
    /// Host-speed yardstick: best ns/op of a fixed reference-frame
    /// workload timed in the same process (see [`calibration_ns_per_op`]).
    /// The CI gate compares `panel_trials_per_sec * calibration_ns_per_op`
    /// — a machine-normalized quantity — so a baseline from one host
    /// remains meaningful on another.
    pub calibration_ns_per_op: f64,
    /// Pre-rewrite engine numbers (only meaningful next to full-smoke
    /// trials; the quick smoke scales them by trial count).
    pub reference: McReference,
    /// `reference.panel_total_ms` over `panel_total_ms`, trial-count
    /// normalized.
    pub speedup_vs_reference: f64,
}

/// Best-of-3 × 200k-trial panel of the engine before this rewrite
/// (`Vec<bool>` frames, one Bernoulli draw per op, fresh allocations
/// per trial, static per-thread trial split), measured with this same
/// harness on the host that produced the committed baseline.
pub fn reference_baseline() -> McReference {
    McReference {
        note: "pre-rewrite engine (PR 1 state): Vec<bool> frames, per-op \
               Bernoulli sampling, per-trial allocation; best of 3 reps, \
               200000 trials/strategy, threads=1, same host as the \
               committed baseline"
            .to_string(),
        per_strategy_ms: vec![38.4, 95.6, 133.2, 328.0],
        panel_total_ms: 595.2,
    }
}

/// Times a fixed, fully self-contained workload — a local xorshift
/// generator driving branchy bit manipulation, defined entirely in
/// this function so no engine code under test can perturb it — as a
/// proxy for host speed. Its instruction mix (integer shifts, xors,
/// popcounts, data-dependent branches) resembles the panel's, so
/// dividing panel throughput by it cancels hardware differences to
/// first order while remaining sensitive to genuine engine
/// regressions.
pub fn calibration_ns_per_op(reps: u32) -> f64 {
    let rounds = 200_000u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15 ^ SMOKE_SEED;
        let mut acc: u64 = 0;
        let t0 = Instant::now();
        for _ in 0..rounds {
            // xorshift64* step + the kind of masked bit work the
            // packed frame does, with a data-dependent branch.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let r = s.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let q = (r >> 58) as u32; // 0..64
            acc ^= 1u64 << (q & 63);
            if r & 0xff == 0 {
                acc = acc.rotate_left(acc.count_ones());
            }
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e9 / rounds as f64
}

/// Runs the timed panel: `reps` repetitions of `trials` Monte-Carlo
/// trials per Fig 4 strategy, single-threaded, best time kept.
pub fn montecarlo_smoke(trials: u64, reps: u32) -> McBenchReport {
    let model = ErrorModel::paper();
    // Warm the caches (and fault in the code paths) once.
    for s in PrepStrategy::ALL {
        let _ = evaluate_prep(s, model, trials.min(2_000), SMOKE_SEED, 1);
    }
    let mut panel = Vec::new();
    for s in PrepStrategy::ALL {
        let mut best = f64::INFINITY;
        let mut eval = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let e = evaluate_prep(s, model, trials, SMOKE_SEED, 1);
            best = best.min(t0.elapsed().as_secs_f64());
            eval = Some(e);
        }
        let eval = eval.expect("at least one rep ran");
        panel.push(McBenchEntry {
            strategy: s.name().to_string(),
            trials,
            wall_ms: best * 1e3,
            trials_per_sec: trials as f64 / best,
            error_rate: eval.error_rate(),
            discard_rate: eval.discard_rate(),
        });
    }
    let panel_total_ms: f64 = panel.iter().map(|e| e.wall_ms).sum();
    let total_trials = trials * PrepStrategy::ALL.len() as u64;
    let reference = reference_baseline();
    // Normalize by trial count so quick smokes still report a
    // meaningful before/after ratio.
    let ref_scaled = reference.panel_total_ms * (trials as f64 / SMOKE_TRIALS as f64);
    McBenchReport {
        schema: "qods-bench-montecarlo/v1".to_string(),
        trials_per_strategy: trials,
        reps,
        threads: 1,
        panel_total_ms,
        panel_trials_per_sec: total_trials as f64 / (panel_total_ms / 1e3),
        calibration_ns_per_op: calibration_ns_per_op(reps),
        panel,
        reference,
        speedup_vs_reference: ref_scaled / panel_total_ms,
    }
}

/// Renders the report as the human-readable side of the smoke.
pub fn render_report(r: &McBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Monte-Carlo perf smoke ({} trials/strategy, best of {}, {} thread):",
        r.trials_per_strategy, r.reps, r.threads
    );
    for e in &r.panel {
        let _ = writeln!(
            out,
            "  {:<20} {:>9.1} ms  {:>12.0} trials/s  err={:.3e} discard={:.3e}",
            e.strategy, e.wall_ms, e.trials_per_sec, e.error_rate, e.discard_rate
        );
    }
    let _ = writeln!(
        out,
        "  panel total {:.1} ms ({:.0} trials/s); {:.1}x vs pre-rewrite engine",
        r.panel_total_ms, r.panel_trials_per_sec, r.speedup_vs_reference
    );
    out
}

/// Compares a fresh smoke against a checked-in baseline report.
/// Returns `Err` with a diagnostic when machine-normalized per-trial
/// throughput — `panel_trials_per_sec * calibration_ns_per_op`, so
/// the baseline host's raw speed cancels — regressed by more than
/// `max_regression` (CI uses 2.0).
pub fn check_against(
    current: &McBenchReport,
    baseline: &McBenchReport,
    max_regression: f64,
) -> Result<String, String> {
    let normalize = |r: &McBenchReport| r.panel_trials_per_sec * r.calibration_ns_per_op;
    let ratio = normalize(baseline) / normalize(current);
    let verdict = format!(
        "normalized panel throughput: current {:.0} trials/s x {:.2} ns calib \
         vs baseline {:.0} trials/s x {:.2} ns calib \
         (normalized slowdown {ratio:.2}, limit {max_regression:.2})",
        current.panel_trials_per_sec,
        current.calibration_ns_per_op,
        baseline.panel_trials_per_sec,
        baseline.calibration_ns_per_op,
    );
    if ratio > max_regression {
        Err(verdict)
    } else {
        Ok(verdict)
    }
}

/// Area points per curve for the full (committed-baseline) sweep
/// smoke — the paper's Fig 15 grid.
pub const SWEEP_AREAS: usize = 13;
/// Area points for the quick (CI) sweep smoke.
pub const QUICK_SWEEP_AREAS: usize = 7;
/// Timing repetitions for the sweep smoke (best kept).
pub const SWEEP_REPS: u32 = 5;

/// One benchmark's timed Fig 15 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepBenchEntry {
    /// Benchmark circuit name.
    pub benchmark: String,
    /// Lowered gate count.
    pub gates: usize,
    /// Best wall time of the full workload (4-arch sweep + headline
    /// summary) at the report's thread count, milliseconds.
    pub wall_ms: f64,
    /// Best wall time of the same workload forced sequential
    /// (threads = 1), milliseconds.
    pub serial_wall_ms: f64,
    /// Headline max speedup (sanity anchor: must not drift when only
    /// performance work happens).
    pub max_speedup: f64,
    /// QLA knee-area penalty vs Fully-Multiplexed (second anchor).
    pub qla_area_penalty: f64,
}

/// Frozen numbers from the sweep implementation this one replaced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReference {
    /// Provenance of the frozen numbers.
    pub note: String,
    /// Per-benchmark best wall times (same workload shape), ms.
    pub per_benchmark_ms: Vec<f64>,
    /// Sum of per-benchmark bests, milliseconds.
    pub total_ms: f64,
    /// Area points per curve the reference ran.
    pub areas: usize,
}

/// The full report written to `BENCH_sweep.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepBenchReport {
    /// Format tag.
    pub schema: String,
    /// Area points per curve.
    pub areas: usize,
    /// Timing repetitions (best kept).
    pub reps: u32,
    /// Worker threads used for the parallel timing (one per core).
    pub threads: usize,
    /// One entry per benchmark circuit.
    pub panel: Vec<SweepBenchEntry>,
    /// Sum of best parallel wall times, milliseconds.
    pub total_ms: f64,
    /// Sum of best sequential wall times, milliseconds.
    pub serial_total_ms: f64,
    /// Sweep throughput: simulated `(arch, area)` points per second at
    /// the *sequential* total. The CI gate normalizes this quantity,
    /// and the single-threaded calibration below can only cancel host
    /// speed for a single-threaded measurement — deriving it from the
    /// parallel total would let per-point regressions hide behind the
    /// runner's core count (and fail honest runs on smaller hosts).
    pub points_per_sec: f64,
    /// Host-speed yardstick shared with the Monte-Carlo smoke; the CI
    /// gate compares `points_per_sec * calibration_ns_per_op`.
    pub calibration_ns_per_op: f64,
    /// Pre-rewrite sweep numbers (area-count normalized when the quick
    /// smoke runs a smaller grid).
    pub reference: SweepReference,
    /// Reference total over `total_ms`, area-count normalized — the
    /// headline improvement of the event-engine rewrite.
    pub speedup_vs_reference: f64,
    /// `serial_total_ms / total_ms` — what the worker pool itself
    /// buys on this host (1.0 on a single-core box).
    pub parallel_speedup: f64,
}

/// Best-of-5 x 13-area Fig 15 sweeps of the simulator before the
/// event-engine rewrite (per-call Dag/schedule/demand rebuild, string
/// of `simulate()` calls, summary re-sweeping three architectures),
/// measured with this same harness on the host that produced the
/// committed baseline.
pub fn sweep_reference_baseline() -> SweepReference {
    SweepReference {
        note: "pre-rewrite simulator (PR 2 state): per-call Dag + \
               speed-of-data + demand-mix rebuild, sequential sweep, \
               speedup_summary re-sweeping 3 archs; best of 5 reps, \
               13 areas, threads=1, same host as the committed baseline"
            .to_string(),
        per_benchmark_ms: vec![31.151, 35.270, 171.942],
        total_ms: 241.687,
        areas: 13,
    }
}

/// The Fig 15 benchmark set: the paper's three 32-bit kernels.
fn sweep_benchmarks() -> Vec<Circuit> {
    use qods_core::kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
    let synth = SynthAdapter::with_budget(12, 1e-2);
    vec![qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)]
}

/// One benchmark's full Fig 15 workload: the four-architecture area
/// sweep plus the headline summary derived from its curves.
fn sweep_workload(ctx: &SimContext<'_>, areas: &[f64], threads: usize) -> (f64, f64) {
    let archs = Arch::fig15_panel(ctx.circuit().n_qubits());
    let curves = area_sweep_in(ctx, &archs, areas, threads);
    let s = speedup_summary_from_curves(&curves);
    (s.max_speedup, s.qla_area_penalty)
}

/// Runs the timed Fig 15 sweep smoke: `reps` repetitions per
/// benchmark, parallel (one worker per core) and sequential, best
/// times kept.
pub fn sweep_smoke(areas_n: usize, reps: u32) -> SweepBenchReport {
    let circuits = sweep_benchmarks();
    let areas = log_areas(200.0, 3e6, areas_n);
    let threads = qods_core::arch::sweep::host_threads();
    let mut panel = Vec::new();
    for c in &circuits {
        let ctx = SimContext::new(c);
        // Warm caches and fault in the code paths once.
        let _ = sweep_workload(&ctx, &areas[..2.min(areas.len())], 1);
        let mut best = f64::INFINITY;
        let mut best_serial = f64::INFINITY;
        let mut anchors = (0.0, 0.0);
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            anchors = sweep_workload(&ctx, &areas, threads);
            best = best.min(t0.elapsed().as_secs_f64());
            let t1 = Instant::now();
            let _ = sweep_workload(&ctx, &areas, 1);
            best_serial = best_serial.min(t1.elapsed().as_secs_f64());
        }
        panel.push(SweepBenchEntry {
            benchmark: c.name.clone(),
            gates: c.len(),
            wall_ms: best * 1e3,
            serial_wall_ms: best_serial * 1e3,
            max_speedup: anchors.0,
            qla_area_penalty: anchors.1,
        });
    }
    let total_ms: f64 = panel.iter().map(|e| e.wall_ms).sum();
    let serial_total_ms: f64 = panel.iter().map(|e| e.serial_wall_ms).sum();
    // 4 architectures per benchmark, one simulation per (arch, area).
    let total_points = (4 * areas_n * circuits.len()) as f64;
    let reference = sweep_reference_baseline();
    // Normalize by area count so quick smokes still report a
    // meaningful before/after ratio (points scale linearly).
    let ref_scaled = reference.total_ms * (areas_n as f64 / reference.areas as f64);
    SweepBenchReport {
        schema: "qods-bench-sweep/v1".to_string(),
        areas: areas_n,
        reps,
        threads,
        total_ms,
        serial_total_ms,
        points_per_sec: total_points / (serial_total_ms / 1e3),
        calibration_ns_per_op: calibration_ns_per_op(reps),
        panel,
        reference,
        speedup_vs_reference: ref_scaled / total_ms,
        parallel_speedup: serial_total_ms / total_ms,
    }
}

/// Renders the sweep report as the human-readable side of the smoke.
pub fn render_sweep_report(r: &SweepBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig 15 sweep perf smoke ({} areas, best of {}, {} thread(s)):",
        r.areas, r.reps, r.threads
    );
    for e in &r.panel {
        let _ = writeln!(
            out,
            "  {:<10} {:>6} gates  {:>8.2} ms parallel  {:>8.2} ms serial  \
             speedup {:.1}x  qla-area {:.0}x",
            e.benchmark, e.gates, e.wall_ms, e.serial_wall_ms, e.max_speedup, e.qla_area_penalty
        );
    }
    let _ = writeln!(
        out,
        "  total {:.1} ms parallel / {:.1} ms serial ({:.0} points/s serial); \
         {:.1}x vs pre-rewrite sweep, {:.2}x from the worker pool",
        r.total_ms, r.serial_total_ms, r.points_per_sec, r.speedup_vs_reference, r.parallel_speedup
    );
    out
}

/// Compares a fresh sweep smoke against a checked-in baseline report
/// with the same machine-normalized rule as [`check_against`]:
/// `points_per_sec * calibration_ns_per_op` cancels host speed, and a
/// normalized slowdown beyond `max_regression` fails.
pub fn check_sweep_against(
    current: &SweepBenchReport,
    baseline: &SweepBenchReport,
    max_regression: f64,
) -> Result<String, String> {
    let normalize = |r: &SweepBenchReport| r.points_per_sec * r.calibration_ns_per_op;
    let ratio = normalize(baseline) / normalize(current);
    let verdict = format!(
        "normalized sweep throughput: current {:.0} points/s x {:.2} ns calib \
         vs baseline {:.0} points/s x {:.2} ns calib \
         (normalized slowdown {ratio:.2}, limit {max_regression:.2})",
        current.points_per_sec,
        current.calibration_ns_per_op,
        baseline.points_per_sec,
        baseline.calibration_ns_per_op,
    );
    if ratio > max_regression {
        Err(verdict)
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_roundtrips_and_checks() {
        let r = montecarlo_smoke(2_000, 1);
        assert_eq!(r.panel.len(), 4);
        assert!(r.panel_total_ms > 0.0);
        assert!(r.panel_trials_per_sec > 0.0);
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: McBenchReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.panel.len(), 4);
        assert_eq!(back.trials_per_strategy, 2_000);
        // A run can never regress >2x against itself.
        let verdict = check_against(&back, &r, 2.0);
        assert!(verdict.is_ok(), "{verdict:?}");
        // And a 3x-slower run must fail the gate.
        let mut slow = r.clone();
        slow.panel_trials_per_sec /= 3.0;
        assert!(check_against(&slow, &r, 2.0).is_err());
    }

    #[test]
    fn sweep_report_roundtrips_and_gate_fires() {
        // Synthetic report: the JSON contract and the normalized gate,
        // without paying for 32-bit kernel lowering in a debug test
        // (CI's quick smoke runs the real thing in release).
        let r = SweepBenchReport {
            schema: "qods-bench-sweep/v1".to_string(),
            areas: 13,
            reps: 5,
            threads: 4,
            panel: vec![SweepBenchEntry {
                benchmark: "QRCA-32".to_string(),
                gates: 1234,
                wall_ms: 10.0,
                serial_wall_ms: 30.0,
                max_speedup: 6.2,
                qla_area_penalty: 11.0,
            }],
            total_ms: 10.0,
            serial_total_ms: 30.0,
            points_per_sec: 5200.0,
            calibration_ns_per_op: 2.0,
            reference: sweep_reference_baseline(),
            speedup_vs_reference: 24.0,
            parallel_speedup: 3.0,
        };
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: SweepBenchReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.panel.len(), 1);
        assert_eq!(back.areas, 13);
        // A run never regresses >2x against itself...
        assert!(check_sweep_against(&back, &r, 2.0).is_ok());
        // ...and a 3x normalized slowdown fails the gate.
        let mut slow = r.clone();
        slow.points_per_sec /= 3.0;
        assert!(check_sweep_against(&slow, &r, 2.0).is_err());
        // The frozen reference keeps the pre-rewrite grid.
        assert_eq!(r.reference.areas, 13);
        assert!((r.reference.total_ms - 241.687).abs() < 1e-9);
    }

    #[test]
    fn smoke_rates_are_deterministic() {
        let a = montecarlo_smoke(4_000, 1);
        let b = montecarlo_smoke(4_000, 2);
        for (x, y) in a.panel.iter().zip(&b.panel) {
            assert_eq!(x.error_rate, y.error_rate, "{}", x.strategy);
            assert_eq!(x.discard_rate, y.discard_rate, "{}", x.strategy);
        }
    }
}

/// Timing repetitions for the compile smoke (best kept).
pub const COMPILE_REPS: u32 = 5;
/// Operand width of the full (committed-baseline) compile smoke.
pub const COMPILE_WIDTH: usize = 32;
/// Operand width of the quick (CI) compile smoke.
pub const QUICK_COMPILE_WIDTH: usize = 8;

/// One kernel of the timed compile workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompileBenchEntry {
    /// The spec (`family:width`).
    pub spec: String,
    /// Lowered physical gate count (sanity anchor).
    pub gates: usize,
}

/// The full report written to `BENCH_compile.json`: cold-disk vs
/// warm-disk full lowering of every kernel family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompileBenchReport {
    /// Format tag.
    pub schema: String,
    /// Operand width every family was compiled at.
    pub width: usize,
    /// Timing repetitions (best kept).
    pub reps: u32,
    /// The compiled kernel set.
    pub panel: Vec<CompileBenchEntry>,
    /// Best wall time of the full set with an *empty* disk store
    /// (every stage computed), milliseconds, threads = 1.
    pub cold_ms: f64,
    /// Best wall time of the full set through a fresh in-process
    /// store over the *warm* disk store (every stage deserialized),
    /// milliseconds, threads = 1.
    pub warm_ms: f64,
    /// Stages recomputed during the warm runs — the cache contract:
    /// must be 0, and the gate hard-fails otherwise.
    pub warm_computed: u64,
    /// `cold_ms / warm_ms` — what the persistent artifact store buys
    /// a cold process.
    pub disk_speedup: f64,
    /// Cold-path compile throughput (lowered gates per second) at the
    /// best cold time. Gate throughput — unlike kernels per second —
    /// is roughly width-invariant, so the quick smoke stays
    /// comparable against the full-width committed baseline.
    pub gates_per_sec: f64,
    /// Host-speed yardstick shared with the other smokes; the CI gate
    /// compares `gates_per_sec * calibration_ns_per_op`.
    pub calibration_ns_per_op: f64,
}

/// Runs the timed compile smoke: every kernel family at `width`,
/// cold-disk vs warm-disk, single-threaded, best of `reps`.
///
/// # Panics
///
/// Panics when a warm run recomputes anything or disagrees with the
/// cold compilation — either would mean the artifact store is broken,
/// which no perf number should paper over.
pub fn compile_smoke(width: usize, reps: u32) -> CompileBenchReport {
    use qods_core::compile::{ArtifactStore, Compiler, SynthBudget};
    use qods_core::kernels::{KernelFamily, KernelSpec};
    use std::sync::Arc;

    let specs: Vec<KernelSpec> = KernelFamily::ALL
        .iter()
        .map(|&family| KernelSpec::new(family, width).expect("smoke widths are valid"))
        .collect();
    let budget = SynthBudget {
        max_t: if width >= COMPILE_WIDTH { 12 } else { 8 },
        target_distance: 1e-2,
    };
    let dir = std::env::temp_dir().join(format!("qods_compile_smoke_{}", std::process::id()));

    // Cold: empty disk store every rep — the full lowering chain runs.
    let mut cold_best = f64::INFINITY;
    let mut cold_panel: Option<Vec<qods_core::compile::CompiledKernel>> = None;
    for _ in 0..reps.max(1) {
        let _ = std::fs::remove_dir_all(&dir);
        let compiler = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget);
        let t0 = Instant::now();
        let compiled = compiler.compile_many(&specs, 1).expect("valid specs");
        cold_best = cold_best.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            compiler.store().stats().disk_hits,
            0,
            "cold runs must start from an empty disk store"
        );
        cold_panel = Some(compiled);
    }
    let cold_panel = cold_panel.expect("at least one cold rep ran");

    // Warm: fresh in-process store over the disk the last cold rep
    // left behind — everything must deserialize, nothing recompute.
    let mut warm_best = f64::INFINITY;
    let mut warm_computed = 0u64;
    for _ in 0..reps.max(1) {
        let compiler = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget);
        let t0 = Instant::now();
        let compiled = compiler.compile_many(&specs, 1).expect("valid specs");
        warm_best = warm_best.min(t0.elapsed().as_secs_f64());
        let stats = compiler.store().stats();
        warm_computed += stats.computed;
        assert_eq!(stats.computed, 0, "warm-disk run recompiled a stage");
        for (cold, warm) in cold_panel.iter().zip(&compiled) {
            assert_eq!(
                *cold.characterization, *warm.characterization,
                "disk-cached artifact disagrees with the fresh compilation"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let total_gates: usize = cold_panel.iter().map(|k| k.scheduled.circuit.len()).sum();
    CompileBenchReport {
        schema: "qods-bench-compile/v1".to_string(),
        width,
        reps,
        panel: cold_panel
            .iter()
            .map(|k| CompileBenchEntry {
                spec: k.spec.to_string(),
                gates: k.scheduled.circuit.len(),
            })
            .collect(),
        cold_ms: cold_best * 1e3,
        warm_ms: warm_best * 1e3,
        warm_computed,
        disk_speedup: cold_best / warm_best,
        gates_per_sec: total_gates as f64 / cold_best,
        calibration_ns_per_op: calibration_ns_per_op(reps),
    }
}

/// Renders the compile report as the human-readable side of the smoke.
pub fn render_compile_report(r: &CompileBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Compile perf smoke ({} families at width {}, best of {}, 1 thread):",
        r.panel.len(),
        r.width,
        r.reps
    );
    for e in &r.panel {
        let _ = writeln!(out, "  {:<12} {:>7} gates", e.spec, e.gates);
    }
    let _ = writeln!(
        out,
        "  cold-disk {:.1} ms, warm-disk {:.1} ms: {:.1}x from the artifact store \
         ({} stages recomputed warm)",
        r.cold_ms, r.warm_ms, r.disk_speedup, r.warm_computed
    );
    out
}

/// Compares a fresh compile smoke against a checked-in baseline:
/// fails when machine-normalized cold-compile throughput regressed
/// more than `max_regression`, when the warm run recomputed anything,
/// or when the disk speedup fell below `min_disk_speedup` (CI uses
/// 2.0 / 1.2).
pub fn check_compile_against(
    current: &CompileBenchReport,
    baseline: &CompileBenchReport,
    max_regression: f64,
    min_disk_speedup: f64,
) -> Result<String, String> {
    let normalize = |r: &CompileBenchReport| r.gates_per_sec * r.calibration_ns_per_op;
    let ratio = normalize(baseline) / normalize(current);
    let verdict = format!(
        "cold compile: current {:.0} gates/s x {:.2} ns calib vs baseline {:.0} x {:.2} \
         (normalized slowdown {ratio:.2}, limit {max_regression:.2}); \
         disk speedup {:.2}x (floor {min_disk_speedup:.2}x), {} warm recomputes",
        current.gates_per_sec,
        current.calibration_ns_per_op,
        baseline.gates_per_sec,
        baseline.calibration_ns_per_op,
        current.disk_speedup,
        current.warm_computed,
    );
    if current.warm_computed > 0 {
        return Err(format!("{verdict} -- warm-disk run recompiled stages"));
    }
    if current.disk_speedup < min_disk_speedup {
        return Err(format!("{verdict} -- disk cache buys too little"));
    }
    if ratio > max_regression {
        return Err(verdict);
    }
    Ok(verdict)
}

/// The serving layer's latency accounting, re-exported so bench
/// callers (the load generator, external harnesses) address one
/// crate: `qods_bench::perf::LatencyHistogram` *is*
/// [`qods_service::stats::LatencyHistogram`] — the same type the
/// `stats` verb reports through.
pub use qods_service::stats::{LatencyHistogram, LatencySummary};

/// Connections for the committed serve smoke (the ISSUE's workload).
pub const SERVE_CONNECTIONS: usize = 8;
/// Lockstep rounds for the full (committed-baseline) serve smoke.
pub const SERVE_ROUNDS: usize = 10;
/// Lockstep rounds for the quick (CI) serve smoke.
pub const QUICK_SERVE_ROUNDS: usize = 5;
/// Monte-Carlo trials per served job: sized so one job costs ~100 ms
/// in release — two orders of magnitude above client-thread
/// scheduling skew, which is what makes the exactly-once coalescing
/// assertion below robust rather than a timing lottery.
pub const SERVE_TRIALS: u64 = 200_000;

/// The serving path's robustness counters, carried in
/// `BENCH_serve.json` so the chaos-hardening work stays visible next
/// to the throughput numbers. Since schema v3 this is the *same*
/// [`RobustnessSnapshot`] the `stats` verb serves — one shape, read
/// straight off the server's stats line, so the bench report and the
/// verb can never drift apart. Client-side retries are a separate
/// report field ([`ServeBenchReport::client_retries`]): they are
/// counted by the clients, not the server.
pub use qods_obs::RobustnessSnapshot;

/// The full report written to `BENCH_serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Format tag.
    pub schema: String,
    /// Concurrent client connections in the multi-connection run.
    pub connections: usize,
    /// Lockstep rounds; each round is one fresh configuration that
    /// every connection requests simultaneously.
    pub rounds: usize,
    /// Requests answered per run (`rounds * connections`, both runs).
    pub requests_total: usize,
    /// Fraction of requests that duplicate another in-flight request
    /// (`1 - 1/connections`: everything but each round's leader).
    pub repeat_fraction: f64,
    /// Monte-Carlo trials per job (the per-job cost knob).
    pub trials_per_job: u64,
    /// Wall seconds for one connection submitting all requests
    /// sequentially against a cache-off server (nothing coalesces,
    /// nothing is cached: every duplicate pays full price).
    pub single_wall_s: f64,
    /// Requests per second of the single-connection baseline.
    pub single_rps: f64,
    /// Wall seconds for `connections` lockstep connections against an
    /// identical cache-off server (duplicates coalesce in flight).
    pub multi_wall_s: f64,
    /// Requests per second of the multi-connection run.
    pub multi_rps: f64,
    /// `multi_rps / single_rps` — the serving layer's concurrency
    /// win. Coalescing alone collapses each round's `connections`
    /// duplicates onto one execution, so this holds on a single-core
    /// host; worker parallelism only adds to it.
    pub scaling: f64,
    /// Jobs the multi-connection server actually executed — the
    /// exactly-once contract: must equal `rounds`, and the gate
    /// hard-fails otherwise.
    pub executed_jobs: u64,
    /// Requests answered by joining an in-flight execution (must be
    /// `rounds * (connections - 1)` when coalescing is airtight).
    pub coalesced_jobs: u64,
    /// Client-observed per-request latency over the multi-connection
    /// run, from the same [`LatencyHistogram`] the `stats` verb uses.
    pub latency: LatencySummary,
    /// Robustness counters from the multi-connection run's server
    /// (the `stats` verb's nested `robustness` object, verbatim).
    pub robustness: RobustnessSnapshot,
    /// Client-side transparent retries over the multi-connection run
    /// (overloaded / timeout / reset; counted by the clients).
    pub client_retries: u64,
    /// Host-speed yardstick shared with the other smokes; the CI gate
    /// compares `multi_rps * calibration_ns_per_op`.
    pub calibration_ns_per_op: f64,
}

/// One serve-smoke job line: round `round` as seen from client
/// `client`. The seed varies per round (each round is a distinct
/// configuration) but not per client (a round's requests must share
/// their coalescing key).
fn serve_job_line(round: usize, client: usize) -> String {
    format!(
        "{{\"id\":\"r{round}c{client}\",\"experiments\":[\"fig4\"],\
         \"overrides\":{{\"mc_trials\":{SERVE_TRIALS},\"seed\":{}}}}}",
        1_000 + round as u64
    )
}

/// Starts an in-process cache-off TCP server for the smoke. Caching
/// is off so the counters prove *in-flight coalescing*, not the
/// content-addressed cache (which the service smokes already gate);
/// one worker thread so the scaling number can only come from the
/// serving layer, never from engine parallelism.
fn serve_smoke_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<()>,
    std::sync::Arc<qods_net::ServeCore>,
) {
    use qods_core::study::StudyConfig;
    use qods_net::{NetServer, ServeCore, ServeOptions};
    use qods_service::Scheduler;
    use std::sync::Arc;

    let scheduler = Scheduler::with_options(StudyConfig::smoke(), 1, false);
    let core = Arc::new(ServeCore::new(
        scheduler,
        ServeOptions {
            max_inflight: 2 * SERVE_CONNECTIONS,
            ..ServeOptions::default()
        },
    ));
    let server = NetServer::bind(Arc::clone(&core), "127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.serve().expect("smoke server serves"));
    (addr, handle, core)
}

/// Runs the concurrent-serving smoke: the same `rounds x connections`
/// request stream (every round one fresh config, duplicated across
/// all connections) against two identical cache-off servers — once
/// over a single connection sequentially, once over `connections`
/// lockstep connections — and reports the throughput scaling plus the
/// coalescing counters that prove duplicates executed exactly once.
///
/// # Panics
///
/// Panics when a request errors or a transport fails — a broken
/// server is not a perf number.
pub fn serve_smoke(connections: usize, rounds: usize) -> ServeBenchReport {
    use qods_net::Client;
    use std::sync::{Arc, Barrier};

    let connections = connections.max(2);
    let rounds = rounds.max(1);
    let requests_total = rounds * connections;

    // Warm the code paths (and the in-process artifact store) once so
    // neither run pays one-time compilation.
    {
        let (addr, server, _core) = serve_smoke_server();
        let mut c = Client::connect(addr).expect("connect warmup");
        let line = "{\"experiments\":[\"fig4\"],\"overrides\":{\"mc_trials\":2000}}";
        let r = c.roundtrip(line).expect("warmup").expect("warmup answers");
        assert!(r.contains("\"event\":\"result\""), "{r}");
        c.shutdown().expect("warmup shutdown");
        server.join().expect("warmup server exits");
    }

    // Single-connection baseline: every request in sequence; with the
    // cache off each of the `connections` duplicates per round pays
    // the full computation.
    let (addr, server, _core) = serve_smoke_server();
    let mut client = Client::connect(addr).expect("connect baseline");
    let t0 = Instant::now();
    for round in 0..rounds {
        for c in 0..connections {
            let line = client
                .roundtrip(&serve_job_line(round, c))
                .expect("roundtrip")
                .expect("result line");
            assert!(line.contains("\"event\":\"result\""), "{line}");
        }
    }
    let single_wall_s = t0.elapsed().as_secs_f64();
    client.shutdown().expect("baseline shutdown");
    server.join().expect("baseline server exits");

    // Multi-connection run: `connections` clients in lockstep rounds;
    // each round's duplicates arrive together and coalesce onto one
    // execution. Latency is recorded client-side into the shared
    // lock-free histogram.
    let (addr, server, core) = serve_smoke_server();
    let barrier = Arc::new(Barrier::new(connections + 1));
    let latency = Arc::new(LatencyHistogram::new());
    let retries = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let workers: Vec<_> = (0..connections)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            let retries = Arc::clone(&retries);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect worker");
                for round in 0..rounds {
                    barrier.wait();
                    let t = Instant::now();
                    let line = client
                        .roundtrip_retrying(&serve_job_line(round, c))
                        .expect("roundtrip")
                        .expect("result line");
                    latency.record(t.elapsed());
                    assert!(line.contains("\"event\":\"result\""), "{line}");
                }
                retries.fetch_add(client.retries(), std::sync::atomic::Ordering::Relaxed);
            })
        })
        .collect();
    let t0 = Instant::now();
    for _ in 0..rounds {
        barrier.wait();
    }
    for w in workers {
        w.join().expect("worker thread");
    }
    let multi_wall_s = t0.elapsed().as_secs_f64();

    let mut probe = Client::connect(addr).expect("connect probe");
    let stats = probe.stats().expect("stats verb");
    probe.shutdown().expect("smoke shutdown");
    server.join().expect("smoke server exits");
    drop(core);

    let single_rps = requests_total as f64 / single_wall_s;
    let multi_rps = requests_total as f64 / multi_wall_s;
    ServeBenchReport {
        schema: "qods-bench-serve/v3".to_string(),
        connections,
        rounds,
        requests_total,
        repeat_fraction: 1.0 - 1.0 / connections as f64,
        trials_per_job: SERVE_TRIALS,
        single_wall_s,
        single_rps,
        multi_wall_s,
        multi_rps,
        scaling: multi_rps / single_rps,
        executed_jobs: stats.executed,
        coalesced_jobs: stats.coalesced,
        latency: latency.summary(),
        robustness: stats.robustness,
        client_retries: retries.load(std::sync::atomic::Ordering::Relaxed),
        calibration_ns_per_op: calibration_ns_per_op(SMOKE_REPS),
    }
}

/// Renders the serve report as the human-readable side of the smoke.
pub fn render_serve_report(r: &ServeBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Concurrent serving smoke ({} connections x {} rounds, {:.0}% duplicates, \
         {} trials/job, cache off):",
        r.connections,
        r.rounds,
        100.0 * r.repeat_fraction,
        r.trials_per_job
    );
    let _ = writeln!(
        out,
        "  single connection: {:>7.3} s  ({:>6.1} req/s, every duplicate recomputed)",
        r.single_wall_s, r.single_rps
    );
    let _ = writeln!(
        out,
        "  {} connections:     {:>7.3} s  ({:>6.1} req/s, {} executions + {} coalesced)",
        r.connections, r.multi_wall_s, r.multi_rps, r.executed_jobs, r.coalesced_jobs
    );
    let _ = writeln!(
        out,
        "  scaling {:.1}x; client latency p50 {:.1} ms / p99 {:.1} ms / max {:.1} ms",
        r.scaling,
        r.latency.p50_us / 1e3,
        r.latency.p99_us / 1e3,
        r.latency.max_us / 1e3
    );
    let _ = writeln!(
        out,
        "  robustness: {} panics caught, {} deadlines exceeded, {} lines \
         rejected, {} idle reaped; {} client retries",
        r.robustness.panics_caught,
        r.robustness.deadline_exceeded,
        r.robustness.lines_rejected,
        r.robustness.idle_reaped,
        r.client_retries
    );
    out
}

/// Compares a fresh serve smoke against a checked-in baseline:
/// fails when coalesced duplicates did not execute exactly once
/// (`executed_jobs != rounds`), when nothing coalesced at all, when
/// throughput scaling fell below `min_scaling` (CI uses 3.0, the
/// ISSUE's floor), or when machine-normalized multi-connection
/// throughput regressed more than `max_regression` (CI uses 2.0).
pub fn check_serve_against(
    current: &ServeBenchReport,
    baseline: &ServeBenchReport,
    max_regression: f64,
    min_scaling: f64,
) -> Result<String, String> {
    let normalize = |r: &ServeBenchReport| r.multi_rps * r.calibration_ns_per_op;
    let ratio = normalize(baseline) / normalize(current);
    let verdict = format!(
        "serving: {} executions for {} rounds, {} coalesced; scaling {:.2}x \
         (floor {min_scaling:.2}x); current {:.1} req/s x {:.2} ns calib vs \
         baseline {:.1} req/s x {:.2} ns calib (normalized slowdown {ratio:.2}, \
         limit {max_regression:.2})",
        current.executed_jobs,
        current.rounds,
        current.coalesced_jobs,
        current.scaling,
        current.multi_rps,
        current.calibration_ns_per_op,
        baseline.multi_rps,
        baseline.calibration_ns_per_op,
    );
    if current.executed_jobs != current.rounds as u64 {
        return Err(format!(
            "{verdict} -- coalesced duplicates must execute exactly once"
        ));
    }
    if current.coalesced_jobs == 0 {
        return Err(format!("{verdict} -- nothing coalesced"));
    }
    if current.scaling < min_scaling {
        return Err(format!("{verdict} -- concurrency scaling below the floor"));
    }
    if ratio > max_regression {
        return Err(verdict);
    }
    Ok(verdict)
}

#[cfg(test)]
mod serve_tests {
    use super::*;

    fn synthetic_serve_report() -> ServeBenchReport {
        // Synthetic report: the JSON contract and the gate logic,
        // without paying for 80 x ~100 ms served jobs in a debug test
        // (CI's quick smoke runs the real thing in release).
        ServeBenchReport {
            schema: "qods-bench-serve/v3".to_string(),
            connections: 8,
            rounds: 10,
            requests_total: 80,
            repeat_fraction: 0.875,
            trials_per_job: SERVE_TRIALS,
            single_wall_s: 8.0,
            single_rps: 10.0,
            multi_wall_s: 1.2,
            multi_rps: 66.7,
            scaling: 6.67,
            executed_jobs: 10,
            coalesced_jobs: 70,
            latency: LatencySummary {
                count: 80,
                mean_us: 105_000.0,
                p50_us: 101_000.0,
                p99_us: 140_000.0,
                max_us: 150_000.0,
            },
            robustness: RobustnessSnapshot::default(),
            client_retries: 0,
            calibration_ns_per_op: 2.0,
        }
    }

    #[test]
    fn serve_report_roundtrips_and_gate_passes_itself() {
        let r = synthetic_serve_report();
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: ServeBenchReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.connections, 8);
        assert_eq!(back.executed_jobs, 10);
        assert_eq!(back.latency.count, 80);
        assert_eq!(back.robustness.panics_caught, 0);
        assert_eq!(back.client_retries, 0);
        let verdict = check_serve_against(&back, &r, 2.0, 3.0);
        assert!(verdict.is_ok(), "{verdict:?}");
    }

    #[test]
    fn serve_gate_fails_on_every_broken_contract() {
        let good = synthetic_serve_report();
        // Duplicate executed twice: exactly-once broken.
        let mut double = good.clone();
        double.executed_jobs = 11;
        let err = check_serve_against(&double, &good, 2.0, 3.0).unwrap_err();
        assert!(err.contains("exactly once"), "{err}");
        // Nothing coalesced.
        let mut cold = good.clone();
        cold.coalesced_jobs = 0;
        assert!(check_serve_against(&cold, &good, 2.0, 3.0)
            .unwrap_err()
            .contains("nothing coalesced"));
        // Scaling below the ISSUE's 3x floor.
        let mut flat = good.clone();
        flat.scaling = 2.4;
        assert!(check_serve_against(&flat, &good, 2.0, 3.0)
            .unwrap_err()
            .contains("below the floor"));
        // A 3x normalized slowdown fails the 2x rule.
        let mut slow = good.clone();
        slow.multi_rps /= 3.0;
        assert!(check_serve_against(&slow, &good, 2.0, 3.0).is_err());
    }

    #[test]
    fn latency_histogram_is_reachable_through_perf() {
        // The satellite contract: one histogram type serves the
        // `stats` verb, the load generator, and bench callers.
        let h = LatencyHistogram::new();
        h.record(std::time::Duration::from_millis(3));
        h.record(std::time::Duration::from_millis(5));
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert!(s.p99_us >= s.p50_us);
    }
}
