//! Machine-readable Monte-Carlo performance smoke: times the Fig 4
//! `evaluate_prep` panel (the hot path of the whole study) and emits
//! `BENCH_montecarlo.json`, so the perf trajectory is tracked across
//! PRs instead of living in commit messages.
//!
//! The committed `BENCH_montecarlo.json` at the repo root doubles as
//! the perf baseline: CI re-runs the smoke in quick mode and fails when
//! per-trial throughput regresses more than 2x against it (see
//! [`check_against`]). Numbers include a frozen `reference` block
//! measured on the pre-rewrite engine with this same harness, so the
//! before/after of the bit-packed + skip-sampling rewrite stays
//! visible.

use qods_core::prelude::{evaluate_prep, ErrorModel, PrepStrategy};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Trials per strategy for the full (committed-baseline) smoke.
pub const SMOKE_TRIALS: u64 = 200_000;
/// Trials per strategy for the quick (CI) smoke.
pub const QUICK_TRIALS: u64 = 40_000;
/// Timing repetitions; the best (minimum) wall time is kept, which is
/// the standard noise filter on shared hosts.
pub const SMOKE_REPS: u32 = 5;
/// Seed for every timed run (results are deterministic per seed).
pub const SMOKE_SEED: u64 = 7;

/// One timed panel entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McBenchEntry {
    /// Strategy name (paper's Fig 4 label).
    pub strategy: String,
    /// Trials run per repetition.
    pub trials: u64,
    /// Best wall time over the repetitions, in milliseconds.
    pub wall_ms: f64,
    /// Trials per second at the best wall time.
    pub trials_per_sec: f64,
    /// Measured uncorrectable rate (sanity anchor: must not drift when
    /// only performance work happens).
    pub error_rate: f64,
    /// Measured discard rate.
    pub discard_rate: f64,
}

/// Frozen numbers from the engine this one replaced, for before/after
/// comparisons inside the same file.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McReference {
    /// Provenance of the frozen numbers.
    pub note: String,
    /// Per-strategy best wall times (same harness shape), milliseconds.
    pub per_strategy_ms: Vec<f64>,
    /// Panel total (sum of per-strategy bests), milliseconds.
    pub panel_total_ms: f64,
}

/// The full report written to `BENCH_montecarlo.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct McBenchReport {
    /// Format tag.
    pub schema: String,
    /// Trials per strategy per repetition.
    pub trials_per_strategy: u64,
    /// Timing repetitions (best kept).
    pub reps: u32,
    /// Worker threads (1 = the single-thread speedup criterion).
    pub threads: usize,
    /// One entry per Fig 4 strategy, paper order.
    pub panel: Vec<McBenchEntry>,
    /// Sum of best wall times, milliseconds.
    pub panel_total_ms: f64,
    /// Panel throughput: total trials / panel_total, per second.
    pub panel_trials_per_sec: f64,
    /// Host-speed yardstick: best ns/op of a fixed reference-frame
    /// workload timed in the same process (see [`calibration_ns_per_op`]).
    /// The CI gate compares `panel_trials_per_sec * calibration_ns_per_op`
    /// — a machine-normalized quantity — so a baseline from one host
    /// remains meaningful on another.
    pub calibration_ns_per_op: f64,
    /// Pre-rewrite engine numbers (only meaningful next to full-smoke
    /// trials; the quick smoke scales them by trial count).
    pub reference: McReference,
    /// `reference.panel_total_ms` over `panel_total_ms`, trial-count
    /// normalized.
    pub speedup_vs_reference: f64,
}

/// Best-of-3 × 200k-trial panel of the engine before this rewrite
/// (`Vec<bool>` frames, one Bernoulli draw per op, fresh allocations
/// per trial, static per-thread trial split), measured with this same
/// harness on the host that produced the committed baseline.
pub fn reference_baseline() -> McReference {
    McReference {
        note: "pre-rewrite engine (PR 1 state): Vec<bool> frames, per-op \
               Bernoulli sampling, per-trial allocation; best of 3 reps, \
               200000 trials/strategy, threads=1, same host as the \
               committed baseline"
            .to_string(),
        per_strategy_ms: vec![38.4, 95.6, 133.2, 328.0],
        panel_total_ms: 595.2,
    }
}

/// Times a fixed, fully self-contained workload — a local xorshift
/// generator driving branchy bit manipulation, defined entirely in
/// this function so no engine code under test can perturb it — as a
/// proxy for host speed. Its instruction mix (integer shifts, xors,
/// popcounts, data-dependent branches) resembles the panel's, so
/// dividing panel throughput by it cancels hardware differences to
/// first order while remaining sensitive to genuine engine
/// regressions.
pub fn calibration_ns_per_op(reps: u32) -> f64 {
    let rounds = 200_000u64;
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut s: u64 = 0x9e37_79b9_7f4a_7c15 ^ SMOKE_SEED;
        let mut acc: u64 = 0;
        let t0 = Instant::now();
        for _ in 0..rounds {
            // xorshift64* step + the kind of masked bit work the
            // packed frame does, with a data-dependent branch.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            let r = s.wrapping_mul(0x2545_f491_4f6c_dd1d);
            let q = (r >> 58) as u32; // 0..64
            acc ^= 1u64 << (q & 63);
            if r & 0xff == 0 {
                acc = acc.rotate_left(acc.count_ones());
            }
        }
        std::hint::black_box(acc);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e9 / rounds as f64
}

/// Runs the timed panel: `reps` repetitions of `trials` Monte-Carlo
/// trials per Fig 4 strategy, single-threaded, best time kept.
pub fn montecarlo_smoke(trials: u64, reps: u32) -> McBenchReport {
    let model = ErrorModel::paper();
    // Warm the caches (and fault in the code paths) once.
    for s in PrepStrategy::ALL {
        let _ = evaluate_prep(s, model, trials.min(2_000), SMOKE_SEED, 1);
    }
    let mut panel = Vec::new();
    for s in PrepStrategy::ALL {
        let mut best = f64::INFINITY;
        let mut eval = None;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let e = evaluate_prep(s, model, trials, SMOKE_SEED, 1);
            best = best.min(t0.elapsed().as_secs_f64());
            eval = Some(e);
        }
        let eval = eval.expect("at least one rep ran");
        panel.push(McBenchEntry {
            strategy: s.name().to_string(),
            trials,
            wall_ms: best * 1e3,
            trials_per_sec: trials as f64 / best,
            error_rate: eval.error_rate(),
            discard_rate: eval.discard_rate(),
        });
    }
    let panel_total_ms: f64 = panel.iter().map(|e| e.wall_ms).sum();
    let total_trials = trials * PrepStrategy::ALL.len() as u64;
    let reference = reference_baseline();
    // Normalize by trial count so quick smokes still report a
    // meaningful before/after ratio.
    let ref_scaled = reference.panel_total_ms * (trials as f64 / SMOKE_TRIALS as f64);
    McBenchReport {
        schema: "qods-bench-montecarlo/v1".to_string(),
        trials_per_strategy: trials,
        reps,
        threads: 1,
        panel_total_ms,
        panel_trials_per_sec: total_trials as f64 / (panel_total_ms / 1e3),
        calibration_ns_per_op: calibration_ns_per_op(reps),
        panel,
        reference,
        speedup_vs_reference: ref_scaled / panel_total_ms,
    }
}

/// Renders the report as the human-readable side of the smoke.
pub fn render_report(r: &McBenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Monte-Carlo perf smoke ({} trials/strategy, best of {}, {} thread):",
        r.trials_per_strategy, r.reps, r.threads
    );
    for e in &r.panel {
        let _ = writeln!(
            out,
            "  {:<20} {:>9.1} ms  {:>12.0} trials/s  err={:.3e} discard={:.3e}",
            e.strategy, e.wall_ms, e.trials_per_sec, e.error_rate, e.discard_rate
        );
    }
    let _ = writeln!(
        out,
        "  panel total {:.1} ms ({:.0} trials/s); {:.1}x vs pre-rewrite engine",
        r.panel_total_ms, r.panel_trials_per_sec, r.speedup_vs_reference
    );
    out
}

/// Compares a fresh smoke against a checked-in baseline report.
/// Returns `Err` with a diagnostic when machine-normalized per-trial
/// throughput — `panel_trials_per_sec * calibration_ns_per_op`, so
/// the baseline host's raw speed cancels — regressed by more than
/// `max_regression` (CI uses 2.0).
pub fn check_against(
    current: &McBenchReport,
    baseline: &McBenchReport,
    max_regression: f64,
) -> Result<String, String> {
    let normalize = |r: &McBenchReport| r.panel_trials_per_sec * r.calibration_ns_per_op;
    let ratio = normalize(baseline) / normalize(current);
    let verdict = format!(
        "normalized panel throughput: current {:.0} trials/s x {:.2} ns calib \
         vs baseline {:.0} trials/s x {:.2} ns calib \
         (normalized slowdown {ratio:.2}, limit {max_regression:.2})",
        current.panel_trials_per_sec,
        current.calibration_ns_per_op,
        baseline.panel_trials_per_sec,
        baseline.calibration_ns_per_op,
    );
    if ratio > max_regression {
        Err(verdict)
    } else {
        Ok(verdict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_roundtrips_and_checks() {
        let r = montecarlo_smoke(2_000, 1);
        assert_eq!(r.panel.len(), 4);
        assert!(r.panel_total_ms > 0.0);
        assert!(r.panel_trials_per_sec > 0.0);
        let json = serde_json::to_string_pretty(&r).expect("serialize");
        let back: McBenchReport = serde_json::from_str(&json).expect("parse");
        assert_eq!(back.panel.len(), 4);
        assert_eq!(back.trials_per_strategy, 2_000);
        // A run can never regress >2x against itself.
        let verdict = check_against(&back, &r, 2.0);
        assert!(verdict.is_ok(), "{verdict:?}");
        // And a 3x-slower run must fail the gate.
        let mut slow = r.clone();
        slow.panel_trials_per_sec /= 3.0;
        assert!(check_against(&slow, &r, 2.0).is_err());
    }

    #[test]
    fn smoke_rates_are_deterministic() {
        let a = montecarlo_smoke(4_000, 1);
        let b = montecarlo_smoke(4_000, 2);
        for (x, y) in a.panel.iter().zip(&b.panel) {
            assert_eq!(x.error_rate, y.error_rate, "{}", x.strategy);
            assert_eq!(x.discard_rate, y.discard_rate, "{}", x.strategy);
        }
    }
}
