//! Regenerates tables and figures of "Running a Quantum Circuit at
//! the Speed of Data" through the experiment registry.
//!
//! ```text
//! cargo run -p qods-bench --bin repro --release                  # everything, in parallel
//! cargo run -p qods-bench --bin repro --release -- --list       # enumerate experiments
//! cargo run -p qods-bench --bin repro --release -- quick        # smoke config
//! cargo run -p qods-bench --bin repro --release -- fig15 table9 # a selection
//! cargo run -p qods-bench --bin repro --release -- --json fig4  # machine-readable output
//! cargo run -p qods-bench --bin repro --release -- --sequential # timing baseline
//! ```
//!
//! Full runs print the paper-layout report on stdout and write
//! `results/repro.json` plus per-figure CSVs under `results/`.
//! Dispatch is entirely data-driven: ids resolve through
//! [`Registry::get`], so adding an experiment to the registry makes it
//! addressable here with no changes to this file.

use qods_bench::{perf, write_json, write_record_csvs};
use qods_core::experiment::StudyContext;
use qods_core::registry::Registry;
use qods_core::report::Render;
use qods_core::study::{PaperReproduction, StudyConfig};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro [--list] [--json] [--sequential] [quick] [EXPERIMENT_ID ...]\n\
     \n\
     With no ids: runs every experiment (in parallel unless --sequential),\n\
     prints the paper-layout report, and writes results/repro.json + CSVs.\n\
     With ids: runs exactly those experiments and prints each one.\n\
     `repro --list` shows every addressable id.\n\
     \n\
     Perf smoke:\n\
     `repro --bench-json [montecarlo] [sweep]` times the Fig 4\n\
     Monte-Carlo panel and/or the Fig 15 architecture sweep (both when\n\
     no workload is named) and writes BENCH_montecarlo.json /\n\
     BENCH_sweep.json (with `quick`: smaller workloads, written under\n\
     results/ so the committed baselines are not clobbered).\n\
     `repro --bench-check PATH` runs the quick Monte-Carlo smoke and\n\
     `repro --bench-check-sweep PATH` the quick sweep smoke; each\n\
     writes its results/ JSON and exits nonzero when machine-normalized\n\
     throughput regressed more than 2x against the baseline at PATH.\n\
     The two checks combine in one invocation."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut list = false;
    let mut json = false;
    let mut sequential = false;
    let mut bench_json = false;
    let mut bench_check: Option<String> = None;
    let mut bench_check_sweep: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => quick = true,
            "--list" => list = true,
            "--json" => json = true,
            "--sequential" => sequential = true,
            "--bench-json" => bench_json = true,
            "--bench-check" => match it.next() {
                Some(path) => bench_check = Some(path),
                None => {
                    eprintln!("--bench-check needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--bench-check-sweep" => match it.next() {
                Some(path) => bench_check_sweep = Some(path),
                None => {
                    eprintln!("--bench-check-sweep needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }

    if bench_json || bench_check.is_some() || bench_check_sweep.is_some() {
        // Workload selection: positional ids name smoke workloads in
        // bench mode; `--bench-json` with no ids means both. A
        // workload requested through `--bench-json` runs at the size
        // the `quick` flag says (full regenerates the repo-root
        // baseline); one running only because a check flag named it
        // always runs quick — combining the modes must not downgrade
        // an explicit baseline regeneration.
        let mut json_mc = false;
        let mut json_sweep = false;
        if bench_json {
            for id in &ids {
                match id.as_str() {
                    "montecarlo" | "mc" | "fig4" => json_mc = true,
                    "sweep" | "fig15" => json_sweep = true,
                    other => {
                        eprintln!("unknown bench workload `{other}`\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            if ids.is_empty() {
                json_mc = true;
                json_sweep = true;
            }
        }
        let run_mc = json_mc || bench_check.is_some();
        let run_sweep = json_sweep || bench_check_sweep.is_some();
        let mut code = ExitCode::SUCCESS;
        if run_mc && run_bench_smoke(quick || !json_mc, bench_check.as_deref()) == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        if run_sweep
            && run_sweep_smoke(quick || !json_sweep, bench_check_sweep.as_deref())
                == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        return code;
    }

    let registry = Registry::paper();

    if list {
        println!("{:<10} {:<22} title", "id", "aliases");
        for info in registry.list() {
            println!(
                "{:<10} {:<22} {}",
                info.id,
                info.aliases.join(", "),
                info.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let config = if quick {
        StudyConfig::smoke()
    } else {
        StudyConfig::default()
    };
    let ctx = StudyContext::new(config.clone());

    if ids.is_empty() {
        let t0 = std::time::Instant::now();
        let records = if sequential {
            registry.run_all_sequential(&ctx)
        } else {
            registry.run_all(&ctx)
        };
        let wall = t0.elapsed();
        let out = PaperReproduction::from_records(config, &records);
        if json {
            println!("{}", serde_json::to_string_pretty(&out).expect("serialize"));
        } else {
            println!("{}", out.render());
        }
        let results = Path::new("results");
        write_json(&results.join("repro.json"), &out).expect("write results/repro.json");
        write_json(&results.join("experiments.json"), &records)
            .expect("write results/experiments.json");
        write_record_csvs(results, &records).expect("write figure CSVs");
        let cpu: f64 = records.iter().map(|r| r.seconds).sum();
        eprintln!(
            "ran {} experiments ({}) in {:.2?} wall / {:.2?} summed; wrote results/",
            records.len(),
            if sequential { "sequential" } else { "parallel" },
            wall,
            std::time::Duration::from_secs_f64(cpu),
        );
        return ExitCode::SUCCESS;
    }

    // Single-experiment mode: resolve every id through the registry —
    // no per-experiment dispatch lives here.
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    match registry.run_selected(&id_refs, &ctx) {
        Ok(records) => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&records).expect("serialize")
                );
            } else {
                for r in &records {
                    print!("{}", r.output.render());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Runs the Monte-Carlo perf smoke (`--bench-json` / `--bench-check`).
fn run_bench_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let trials = if quick {
        perf::QUICK_TRIALS
    } else {
        perf::SMOKE_TRIALS
    };
    let report = perf::montecarlo_smoke(trials, perf::SMOKE_REPS);
    print!("{}", perf::render_report(&report));
    let out = if quick {
        Path::new("results/BENCH_montecarlo.json")
    } else {
        Path::new("BENCH_montecarlo.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::McBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_against(&report, &baseline, 2.0) {
        Ok(verdict) => {
            println!("perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the Fig 15 sweep perf smoke (`--bench-json sweep` /
/// `--bench-check-sweep`).
fn run_sweep_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let areas = if quick {
        perf::QUICK_SWEEP_AREAS
    } else {
        perf::SWEEP_AREAS
    };
    let report = perf::sweep_smoke(areas, perf::SWEEP_REPS);
    print!("{}", perf::render_sweep_report(&report));
    let out = if quick {
        Path::new("results/BENCH_sweep.json")
    } else {
        Path::new("BENCH_sweep.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::SweepBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_sweep_against(&report, &baseline, 2.0) {
        Ok(verdict) => {
            println!("sweep perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("sweep perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}
