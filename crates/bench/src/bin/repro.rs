//! Regenerates tables and figures of "Running a Quantum Circuit at
//! the Speed of Data" through the experiment registry.
//!
//! ```text
//! cargo run -p qods-bench --bin repro --release                  # everything, in parallel
//! cargo run -p qods-bench --bin repro --release -- --list       # enumerate experiments
//! cargo run -p qods-bench --bin repro --release -- quick        # smoke config
//! cargo run -p qods-bench --bin repro --release -- fig15 table9 # a selection
//! cargo run -p qods-bench --bin repro --release -- --json fig4  # machine-readable output
//! cargo run -p qods-bench --bin repro --release -- --sequential # timing baseline
//! ```
//!
//! Full runs print the paper-layout report on stdout and write
//! `results/repro.json` plus per-figure CSVs under `results/`.
//! Dispatch is entirely data-driven: ids resolve through
//! [`Registry::get`], so adding an experiment to the registry makes it
//! addressable here with no changes to this file.

use qods_bench::{perf, write_json, write_record_csvs};
use qods_core::experiment::StudyContext;
use qods_core::registry::Registry;
use qods_core::report::Render;
use qods_core::study::{PaperReproduction, StudyConfig};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro [--list] [--json] [--sequential] [quick] [EXPERIMENT_ID ...]\n\
     \n\
     With no ids: runs every experiment (in parallel unless --sequential),\n\
     prints the paper-layout report, and writes results/repro.json + CSVs.\n\
     With ids: runs exactly those experiments and prints each one.\n\
     `repro --list` shows every addressable id.\n\
     \n\
     Perf smoke:\n\
     `repro --bench-json` times the Fig 4 Monte-Carlo panel and writes\n\
     BENCH_montecarlo.json (with `quick`: fewer trials, written under\n\
     results/ so the committed baseline is not clobbered).\n\
     `repro --bench-check PATH` runs the quick smoke, writes\n\
     results/BENCH_montecarlo.json, and exits nonzero when panel\n\
     throughput regressed more than 2x against the baseline at PATH."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut list = false;
    let mut json = false;
    let mut sequential = false;
    let mut bench_json = false;
    let mut bench_check: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => quick = true,
            "--list" => list = true,
            "--json" => json = true,
            "--sequential" => sequential = true,
            "--bench-json" => bench_json = true,
            "--bench-check" => match it.next() {
                Some(path) => bench_check = Some(path),
                None => {
                    eprintln!("--bench-check needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }

    if bench_json || bench_check.is_some() {
        return run_bench_smoke(quick || bench_check.is_some(), bench_check.as_deref());
    }

    let registry = Registry::paper();

    if list {
        println!("{:<10} {:<22} title", "id", "aliases");
        for info in registry.list() {
            println!(
                "{:<10} {:<22} {}",
                info.id,
                info.aliases.join(", "),
                info.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let config = if quick {
        StudyConfig::smoke()
    } else {
        StudyConfig::default()
    };
    let ctx = StudyContext::new(config.clone());

    if ids.is_empty() {
        let t0 = std::time::Instant::now();
        let records = if sequential {
            registry.run_all_sequential(&ctx)
        } else {
            registry.run_all(&ctx)
        };
        let wall = t0.elapsed();
        let out = PaperReproduction::from_records(config, &records);
        if json {
            println!("{}", serde_json::to_string_pretty(&out).expect("serialize"));
        } else {
            println!("{}", out.render());
        }
        let results = Path::new("results");
        write_json(&results.join("repro.json"), &out).expect("write results/repro.json");
        write_json(&results.join("experiments.json"), &records)
            .expect("write results/experiments.json");
        write_record_csvs(results, &records).expect("write figure CSVs");
        let cpu: f64 = records.iter().map(|r| r.seconds).sum();
        eprintln!(
            "ran {} experiments ({}) in {:.2?} wall / {:.2?} summed; wrote results/",
            records.len(),
            if sequential { "sequential" } else { "parallel" },
            wall,
            std::time::Duration::from_secs_f64(cpu),
        );
        return ExitCode::SUCCESS;
    }

    // Single-experiment mode: resolve every id through the registry —
    // no per-experiment dispatch lives here.
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    match registry.run_selected(&id_refs, &ctx) {
        Ok(records) => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&records).expect("serialize")
                );
            } else {
                for r in &records {
                    print!("{}", r.output.render());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// Runs the Monte-Carlo perf smoke (`--bench-json` / `--bench-check`).
fn run_bench_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let trials = if quick {
        perf::QUICK_TRIALS
    } else {
        perf::SMOKE_TRIALS
    };
    let report = perf::montecarlo_smoke(trials, perf::SMOKE_REPS);
    print!("{}", perf::render_report(&report));
    let out = if quick {
        Path::new("results/BENCH_montecarlo.json")
    } else {
        Path::new("BENCH_montecarlo.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::McBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_against(&report, &baseline, 2.0) {
        Ok(verdict) => {
            println!("perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}
