//! Regenerates tables and figures of "Running a Quantum Circuit at
//! the Speed of Data" — a thin client of the `qods-service` job
//! layer.
//!
//! ```text
//! cargo run -p qods-bench --bin repro --release                  # everything, in parallel
//! cargo run -p qods-bench --bin repro --release -- --list       # enumerate experiments
//! cargo run -p qods-bench --bin repro --release -- quick        # smoke config
//! cargo run -p qods-bench --bin repro --release -- fig15 table9 # a selection
//! cargo run -p qods-bench --bin repro --release -- --json fig4  # machine-readable output
//! cargo run -p qods-bench --bin repro --release -- --sequential # timing baseline
//! cargo run -p qods-bench --bin repro --release -- --threads 4  # pin every pool
//! cargo run -p qods-bench --bin repro --release -- --load 40    # service load generator
//! ```
//!
//! Full runs print the paper-layout report on stdout and write
//! `results/repro.json` plus per-figure CSVs under `results/`.
//! Dispatch is entirely data-driven: every run is a
//! [`RunRequest`](qods_service::RunRequest) submitted to a
//! [`Scheduler`](qods_service::Scheduler), so adding an experiment to
//! the registry makes it addressable here with no changes to this
//! file, and `repro` exercises exactly the code path `qods-serve`
//! serves.

use qods_bench::{perf, write_json, write_record_csvs};
use qods_core::registry::Registry;
use qods_core::report::Render;
use qods_core::study::{PaperReproduction, StudyConfig};
use qods_service::{RunRequest, Scheduler};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: repro [--list] [--list-kernels] [--json] [--sequential] [--threads N]\n\
     \t     [--kernel FAMILY:WIDTH] [quick] [EXPERIMENT_ID ...]\n\
     \n\
     With no ids: runs every experiment (in parallel unless --sequential),\n\
     prints the paper-layout report, and writes results/repro.json + CSVs.\n\
     With ids: runs exactly those experiments and prints each one\n\
     (duplicate ids are rejected).\n\
     `repro --list` shows every addressable id.\n\
     `repro --lint` runs the qods-lint workspace invariant checker\n\
     against the committed lint-baseline.json and exits nonzero on\n\
     any new finding (same engine as `cargo run -p qods-lint`).\n\
     `repro --list-kernels` shows every kernel family and width bound.\n\
     `repro --kernel qcla:48` compiles one kernel through the staged\n\
     pipeline (repeatable; unknown families and invalid widths are\n\
     clean errors) and prints its characterization.\n\
     `--threads N` pins every worker pool (registry fan-out, Fig 15\n\
     sweeps, Monte-Carlo) to N threads end-to-end.\n\
     Compiled kernel artifacts persist under results/.artifacts/\n\
     (override with QODS_ARTIFACT_DIR; empty value = in-memory only),\n\
     so a second repro run in the same workspace skips lowering.\n\
     \n\
     Service load generator:\n\
     `repro --load N [--repeat F] [--load-gate R]` fires N randomized\n\
     requests (fraction F of them repeats, default 0.8) at a cold and\n\
     a warm job service and reports throughput and cache-hit rate;\n\
     with --load-gate R it exits nonzero unless warm/cold >= R.\n\
     `--connections C` (C > 1) drives the same batch over TCP instead:\n\
     C concurrent client connections against an in-process qods-net\n\
     server, reporting coalescing counters and client-side latency\n\
     percentiles alongside the throughput numbers.\n\
     \n\
     Observability:\n\
     `--trace-out FILE` (with --load) arms end-to-end request tracing,\n\
     prints a per-stage time breakdown after the run, and writes FILE\n\
     as Chrome trace-event JSON (load it at ui.perfetto.dev).\n\
     `repro --trace-verify FILE` checks that FILE is valid Chrome\n\
     trace JSON with >0 spans in every serving stage (net. / svc. /\n\
     compile. / pool.) and that every event sits on a named lane —\n\
     the CI obs-job gate over a previously written trace.\n\
     `repro --trace-overhead-gate PCT` times the same in-process batch\n\
     with tracing off and on (interleaved, best-of-3, one process, so\n\
     the comparison is machine-normalized by construction) and exits\n\
     nonzero when the traced run is more than PCT% slower.\n\
     \n\
     Perf smoke:\n\
     `repro --bench-json [montecarlo] [sweep] [compile] [serve]` times\n\
     the Fig 4 Monte-Carlo panel, the Fig 15 architecture sweep, the\n\
     cold-vs-warm-disk kernel compile, and/or the concurrent TCP\n\
     serving layer (all four when no workload is named) and writes\n\
     BENCH_montecarlo.json / BENCH_sweep.json / BENCH_compile.json /\n\
     BENCH_serve.json (with `quick`: smaller workloads, written\n\
     under results/ so the committed baselines are not clobbered).\n\
     `repro --bench-check PATH` runs the quick Monte-Carlo smoke,\n\
     `repro --bench-check-sweep PATH` the quick sweep smoke,\n\
     `repro --bench-check-compile PATH` the quick compile smoke, and\n\
     `repro --bench-check-serve PATH` the quick serving smoke; each\n\
     writes its results/ JSON and exits nonzero when machine-normalized\n\
     throughput regressed more than 2x against the baseline at PATH\n\
     (the compile check additionally requires zero warm-disk recompiles\n\
     and a >= 1.2x disk speedup; the serve check requires coalesced\n\
     duplicates to execute exactly once and >= 3x concurrency scaling).\n\
     The checks combine in one invocation."
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut list = false;
    let mut list_kernels = false;
    let mut kernels: Vec<String> = Vec::new();
    let mut json = false;
    let mut sequential = false;
    let mut threads: Option<usize> = None;
    let mut load: Option<usize> = None;
    let mut repeat = 0.8f64;
    let mut load_gate: Option<f64> = None;
    let mut connections = 1usize;
    let mut trace_out: Option<String> = None;
    let mut trace_verify: Option<String> = None;
    let mut trace_overhead_gate: Option<f64> = None;
    let mut lint = false;
    let mut bench_json = false;
    let mut bench_check: Option<String> = None;
    let mut bench_check_sweep: Option<String> = None;
    let mut bench_check_compile: Option<String> = None;
    let mut bench_check_serve: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => quick = true,
            "--list" => list = true,
            "--list-kernels" => list_kernels = true,
            "--kernel" => match it.next() {
                Some(spec) => kernels.push(spec),
                None => {
                    eprintln!("--kernel needs a FAMILY:WIDTH spec\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--json" => json = true,
            "--sequential" => sequential = true,
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = Some(n),
                _ => {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--load" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => load = Some(n),
                _ => {
                    eprintln!("--load needs a positive request count\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--repeat" => match it.next().and_then(|f| f.parse::<f64>().ok()) {
                Some(f) if (0.0..1.0).contains(&f) => repeat = f,
                _ => {
                    eprintln!("--repeat needs a fraction in [0, 1)\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--load-gate" => match it.next().and_then(|f| f.parse::<f64>().ok()) {
                Some(r) if r >= 1.0 => load_gate = Some(r),
                _ => {
                    eprintln!("--load-gate needs a ratio >= 1\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--connections" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => connections = n,
                _ => {
                    eprintln!("--connections needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match it.next() {
                Some(path) if !path.is_empty() => trace_out = Some(path),
                _ => {
                    eprintln!("--trace-out needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-verify" => match it.next() {
                Some(path) if !path.is_empty() => trace_verify = Some(path),
                _ => {
                    eprintln!("--trace-verify needs a file path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--trace-overhead-gate" => match it.next().and_then(|f| f.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => trace_overhead_gate = Some(pct),
                _ => {
                    eprintln!(
                        "--trace-overhead-gate needs a positive percentage\n{}",
                        usage()
                    );
                    return ExitCode::FAILURE;
                }
            },
            "--lint" => lint = true,
            "--bench-json" => bench_json = true,
            "--bench-check" => match it.next() {
                Some(path) => bench_check = Some(path),
                None => {
                    eprintln!("--bench-check needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--bench-check-sweep" => match it.next() {
                Some(path) => bench_check_sweep = Some(path),
                None => {
                    eprintln!("--bench-check-sweep needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--bench-check-compile" => match it.next() {
                Some(path) => bench_check_compile = Some(path),
                None => {
                    eprintln!("--bench-check-compile needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--bench-check-serve" => match it.next() {
                Some(path) => bench_check_serve = Some(path),
                None => {
                    eprintln!("--bench-check-serve needs a baseline path\n{}", usage());
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{}", usage());
                return ExitCode::FAILURE;
            }
            other => ids.push(other.to_string()),
        }
    }

    if lint {
        return run_lint();
    }

    // Trace verification inspects a file someone else wrote; it must
    // not start pools or touch the artifact store.
    if let Some(path) = trace_verify {
        return run_trace_verify(&path);
    }
    if trace_out.is_some() && load.is_none() {
        eprintln!("--trace-out requires --load\n{}", usage());
        return ExitCode::FAILURE;
    }

    // Pin every worker pool in the process before anything runs:
    // registry fan-out, Fig 15 sweeps, and Monte-Carlo all consult
    // the same `qods_pool` policy. `--sequential` is the fully
    // single-threaded baseline unless `--threads` says otherwise.
    if let Some(n) = threads {
        qods_service::pool::set_thread_override(Some(n));
    } else if sequential {
        qods_service::pool::set_thread_override(Some(1));
    }

    // Attach the persistent artifact tier before any compilation: a
    // second repro run in the same workspace serves every kernel
    // stage from results/.artifacts/ instead of re-lowering
    // (QODS_ARTIFACT_DIR overrides the location; empty disables).
    let store = qods_core::compile::ArtifactStore::init_process(Path::new(
        qods_core::compile::DEFAULT_ARTIFACT_DIR,
    ));

    if list_kernels {
        return run_list_kernels();
    }
    if !kernels.is_empty() {
        return run_compile_kernels(&kernels, quick);
    }

    if let Some(pct) = trace_overhead_gate {
        return run_trace_overhead(pct);
    }

    if let Some(requests) = load {
        // Arm tracing before any serving-path work so the very first
        // request of the cold pass is captured; flush after the run so
        // the trace covers the whole batch.
        if trace_out.is_some() {
            qods_obs::trace::enable();
        }
        let code = run_load_generator(requests, repeat, load_gate, connections);
        if let Some(path) = trace_out {
            if let Err(flush_code) = flush_trace(&path) {
                return flush_code;
            }
        }
        return code;
    }

    if bench_json
        || bench_check.is_some()
        || bench_check_sweep.is_some()
        || bench_check_compile.is_some()
        || bench_check_serve.is_some()
    {
        // Workload selection: positional ids name smoke workloads in
        // bench mode; `--bench-json` with no ids means both. A
        // workload requested through `--bench-json` runs at the size
        // the `quick` flag says (full regenerates the repo-root
        // baseline); one running only because a check flag named it
        // always runs quick — combining the modes must not downgrade
        // an explicit baseline regeneration.
        let mut json_mc = false;
        let mut json_sweep = false;
        let mut json_compile = false;
        let mut json_serve = false;
        if bench_json {
            for id in &ids {
                match id.as_str() {
                    "montecarlo" | "mc" | "fig4" => json_mc = true,
                    "sweep" | "fig15" => json_sweep = true,
                    "compile" => json_compile = true,
                    "serve" | "net" => json_serve = true,
                    other => {
                        eprintln!("unknown bench workload `{other}`\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            if ids.is_empty() {
                json_mc = true;
                json_sweep = true;
                json_compile = true;
                json_serve = true;
            }
        }
        let run_mc = json_mc || bench_check.is_some();
        let run_sweep = json_sweep || bench_check_sweep.is_some();
        let run_compile = json_compile || bench_check_compile.is_some();
        let run_serve = json_serve || bench_check_serve.is_some();
        let mut code = ExitCode::SUCCESS;
        if run_mc && run_bench_smoke(quick || !json_mc, bench_check.as_deref()) == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        if run_sweep
            && run_sweep_smoke(quick || !json_sweep, bench_check_sweep.as_deref())
                == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        if run_compile
            && run_compile_smoke(quick || !json_compile, bench_check_compile.as_deref())
                == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        if run_serve
            && run_serve_smoke(quick || !json_serve, bench_check_serve.as_deref())
                == ExitCode::FAILURE
        {
            code = ExitCode::FAILURE;
        }
        return code;
    }

    let registry = Registry::paper();

    if list {
        println!("{:<10} {:<22} title", "id", "aliases");
        for info in registry.list() {
            println!(
                "{:<10} {:<22} {}",
                info.id,
                info.aliases.join(", "),
                info.title
            );
        }
        return ExitCode::SUCCESS;
    }

    let config = if quick {
        StudyConfig::smoke()
    } else {
        StudyConfig::default()
    };
    // `repro` is a thin client of the job service: every run — full
    // paper or a selection — is one RunRequest through the scheduler
    // `qods-serve` uses, on the same shared worker pool.
    let workers = if sequential {
        1
    } else {
        qods_service::pool::host_threads()
    };
    let scheduler = Scheduler::with_options(config.clone(), workers, true);
    let request = RunRequest::of(ids.iter().map(String::as_str));

    if ids.is_empty() {
        let result = scheduler.run(&request).expect("the full registry resolves");
        // The compat struct records the *requested* configuration, not
        // the resolved one: the scheduler rewrites `threads` to the
        // host's worker count, and embedding that would make
        // results/repro.json vary across machines even though every
        // experiment output is bit-identical at any pool size.
        let out = PaperReproduction::from_records(config, &result.records);
        if json {
            println!("{}", serde_json::to_string_pretty(&out).expect("serialize"));
        } else {
            println!("{}", out.render());
        }
        let results = Path::new("results");
        write_json(&results.join("repro.json"), &out).expect("write results/repro.json");
        write_json(&results.join("experiments.json"), &result.records)
            .expect("write results/experiments.json");
        write_record_csvs(results, &result.records).expect("write figure CSVs");
        let cpu: f64 = result.records.iter().map(|r| r.seconds).sum();
        eprintln!(
            "ran {} experiments ({}, {} workers) in {:.2?} wall / {:.2?} summed; wrote results/",
            result.records.len(),
            if sequential { "sequential" } else { "parallel" },
            scheduler.threads(),
            std::time::Duration::from_secs_f64(result.seconds),
            std::time::Duration::from_secs_f64(cpu),
        );
        let st = store.stats();
        eprintln!(
            "compile stages: {} computed, {} mem hits, {} disk hits, {} corrupt",
            st.computed, st.mem_hits, st.disk_hits, st.corrupt_reads
        );
        return ExitCode::SUCCESS;
    }

    // Single-experiment mode: resolve every id through the service —
    // no per-experiment dispatch lives here.
    match scheduler.run(&request) {
        Ok(result) => {
            if json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&result.records).expect("serialize")
                );
            } else {
                for r in &result.records {
                    print!("{}", r.output.render());
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            ExitCode::FAILURE
        }
    }
}

/// `repro --lint`: the qods-lint workspace invariant checker against
/// the committed baseline — the same run the CI lint job performs.
fn run_lint() -> ExitCode {
    let cwd = Path::new(".");
    let root = if cwd.join("crates").is_dir() {
        cwd.to_path_buf()
    } else {
        // Not launched from the workspace root (e.g. a bare binary):
        // fall back to the source tree this build came from.
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    };
    let baseline_path = root.join("lint-baseline.json");
    let base = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match qods_lint::baseline::Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("repro --lint: {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        Err(_) => qods_lint::baseline::Baseline::empty(),
    };
    let tables = qods_lint::Tables::workspace();
    match qods_lint::run(&root, &tables, &base) {
        Ok(outcome) => {
            print!("{}", qods_lint::render_human(&outcome));
            if outcome.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("repro --lint: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro --list-kernels`: every kernel family the pipeline compiles.
fn run_list_kernels() -> ExitCode {
    use qods_core::kernels::{KernelFamily, MAX_WIDTH};
    println!(
        "{:<10} {:>12} {:>6} widths   description",
        "family", "qubits(n=32)", "synth"
    );
    for family in KernelFamily::ALL {
        println!(
            "{:<10} {:>12} {:>6} 1..={:<4} {}",
            family.name(),
            family.n_qubits(32),
            if family.uses_synthesis() { "yes" } else { "no" },
            MAX_WIDTH,
            family.title(),
        );
    }
    println!("\ncompile one with `repro --kernel FAMILY:WIDTH` (e.g. --kernel qcla:48)");
    ExitCode::SUCCESS
}

/// `repro --kernel FAMILY:WIDTH ...`: compiles each spec through the
/// staged pipeline (and the persistent artifact store) and prints its
/// characterization. Bad specs are typed errors, never panics.
fn run_compile_kernels(specs: &[String], quick: bool) -> ExitCode {
    use qods_core::compile::{ArtifactStore, Compiler, SynthBudget};
    use qods_core::kernels::KernelSpec;

    let mut parsed = Vec::with_capacity(specs.len());
    for raw in specs {
        match KernelSpec::parse(raw) {
            Ok(spec) => parsed.push(spec),
            Err(e) => {
                eprintln!("{e}\n(see `repro --list-kernels`)");
                return ExitCode::FAILURE;
            }
        }
    }
    let config = if quick {
        StudyConfig::smoke()
    } else {
        StudyConfig::default()
    };
    let compiler = Compiler::new(
        ArtifactStore::process(),
        SynthBudget {
            max_t: config.synth_max_t,
            target_distance: config.synth_target,
        },
    );
    let compiled = compiler
        .compile_many(&parsed, qods_service::pool::pool_threads(parsed.len()))
        .expect("specs validated above");
    for k in &compiled {
        let r = &k.characterization.report;
        println!(
            "{:<12} {:>4} qubits {:>7} gates  depth {:>6}  T-frac {:.3}  \
             {:.3e} us @ speed of data  zeros {:.1}/ms  pi/8 {:.1}/ms",
            k.spec.to_string(),
            r.n_qubits,
            r.gate_count,
            k.scheduled.depth,
            r.non_transversal_fraction,
            k.characterization.makespan_us,
            r.bandwidth.zero_per_ms,
            r.bandwidth.pi8_per_ms,
        );
    }
    let st = compiler.store().stats();
    eprintln!(
        "compile stages: {} computed, {} mem hits, {} disk hits ({})",
        st.computed,
        st.mem_hits,
        st.disk_hits,
        compiler
            .store()
            .dir()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "in-memory".to_string()),
    );
    ExitCode::SUCCESS
}

/// Drains the process tracer, prints the per-stage time breakdown,
/// and writes the Chrome trace-event file `--trace-out` asked for.
/// Runs after the load generator regardless of its outcome (a failed
/// run's trace is exactly the one worth looking at); only a write
/// failure turns into an error of its own.
fn flush_trace(path: &str) -> Result<(), ExitCode> {
    use qods_obs::export;

    let tracer = qods_obs::trace::tracer();
    let events = tracer.drain();
    let dropped = tracer.dropped();
    println!(
        "\nper-stage time breakdown ({} spans, {dropped} dropped):",
        events.len()
    );
    for (site, agg) in export::stage_breakdown(&events) {
        println!(
            "  {site:<24} {:>6} x  total {:>10.3} ms  max {:>9.3} ms",
            agg.count,
            agg.total_ns as f64 / 1e6,
            agg.max_ns as f64 / 1e6,
        );
    }
    match std::fs::write(path, export::to_chrome(&events)) {
        Ok(()) => {
            println!("wrote Chrome trace to {path} (load it at ui.perfetto.dev)");
            Ok(())
        }
        Err(e) => {
            eprintln!("failed to write trace to {path}: {e}");
            Err(ExitCode::FAILURE)
        }
    }
}

/// `repro --trace-verify FILE`: the CI check over a trace written by
/// `--trace-out`. The file must parse as Chrome trace-event JSON,
/// contain at least one complete (`X`) span in every serving stage,
/// and reference only lanes that carry a `thread_name` metadata
/// record — the properties the Perfetto UI needs to render a useful
/// timeline.
fn run_trace_verify(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace verify: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let events = match qods_obs::export::parse_chrome(&text) {
        Ok(ev) => ev,
        Err(e) => {
            eprintln!("trace verify: {path} is not Chrome trace JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for stage in ["net.", "svc.", "compile.", "pool."] {
        let n = events
            .iter()
            .filter(|e| e.ph == "X" && e.name.starts_with(stage))
            .count();
        println!("  {stage:<9} {n} spans");
        if n == 0 {
            eprintln!("trace verify FAILED: no `{stage}*` spans in {path}");
            failed = true;
        }
    }
    let named_lanes: std::collections::BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ph == "M")
        .map(|e| e.tid)
        .collect();
    if let Some(orphan) = events
        .iter()
        .find(|e| e.ph != "M" && !named_lanes.contains(&e.tid))
    {
        eprintln!(
            "trace verify FAILED: event `{}` sits on unnamed lane {}",
            orphan.name, orphan.tid
        );
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("trace verify OK: {path} ({} events)", events.len());
        ExitCode::SUCCESS
    }
}

/// `repro --trace-overhead-gate PCT`: the CI bound on what tracing
/// costs the serving path. Times the same in-process batch with
/// tracing disabled and enabled — interleaved passes, best-of-3 per
/// mode, one process — so the comparison normalizes the machine away
/// like the bench-check gates do, and fails when the traced run is
/// more than PCT% slower than the untraced one.
fn run_trace_overhead(max_pct: f64) -> ExitCode {
    use qods_service::Overrides;

    let batch: Vec<RunRequest> = (0..12)
        .map(|i| {
            RunRequest::of(["fig4"]).with_overrides(Overrides {
                n_bits: Some(6 + (i % 3)),
                mc_trials: Some(50_000),
                seed: Some(7_000 + i as u64),
                ..Overrides::default()
            })
        })
        .collect();
    // Caching stays off: every pass performs the same real compute,
    // so the span-recording cost is measured against a stable
    // denominator instead of a cache-hit no-op.
    let scheduler = Scheduler::with_options(
        StudyConfig::smoke(),
        qods_service::pool::host_threads(),
        false,
    );
    let run_batch = |label: &str| -> Result<f64, ExitCode> {
        let t0 = std::time::Instant::now();
        for (i, outcome) in scheduler.run_batch(&batch).into_iter().enumerate() {
            if let Err(e) = outcome {
                eprintln!("overhead-gate request {i} ({label}) rejected: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
        Ok(t0.elapsed().as_secs_f64())
    };

    // One untimed pass warms the artifact store and the worker pools.
    if let Err(code) = run_batch("warmup") {
        return code;
    }
    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    let mut spans_recorded = 0usize;
    for _round in 0..3 {
        qods_obs::trace::disable();
        match run_batch("untraced") {
            Ok(s) => best_off = best_off.min(s),
            Err(code) => return code,
        }
        qods_obs::trace::enable();
        let traced = run_batch("traced");
        // Drain between passes so the bounded span buffer never
        // fills: a full buffer drops spans instead of blocking, which
        // would understate the very overhead being measured.
        spans_recorded += qods_obs::trace::tracer().drain().len();
        qods_obs::trace::disable();
        match traced {
            Ok(s) => best_on = best_on.min(s),
            Err(code) => return code,
        }
    }
    if spans_recorded == 0 {
        eprintln!("tracing overhead gate FAILED: traced passes recorded no spans");
        return ExitCode::FAILURE;
    }
    let overhead_pct = 100.0 * (best_on / best_off - 1.0);
    println!(
        "tracing overhead: untraced {best_off:.3}s, traced {best_on:.3}s \
         ({spans_recorded} spans, {overhead_pct:+.1}% overhead)"
    );
    if overhead_pct > max_pct {
        eprintln!("tracing overhead gate FAILED: {overhead_pct:.1}% > allowed {max_pct:.1}%");
        ExitCode::FAILURE
    } else {
        println!("tracing overhead gate OK: {overhead_pct:+.1}% <= {max_pct:.1}%");
        ExitCode::SUCCESS
    }
}

/// The service load generator (`repro --load N`): fires a batch of
/// randomized-override requests — a `repeat` fraction of them reusing
/// earlier configurations — at a cold service (caching off: every
/// request recomputes) and a warm one (the content-addressed cache),
/// and reports throughput, speedup, cache-hit rate, and how many
/// benchmark lowerings each service actually performed. With
/// `--connections C > 1` the same batch is served over TCP by an
/// in-process `qods-net` server instead, split round-robin across C
/// concurrent client connections, adding coalescing counters and
/// client-side latency percentiles to the report.
fn run_load_generator(
    requests: usize,
    repeat: f64,
    gate: Option<f64>,
    connections: usize,
) -> ExitCode {
    use qods_service::Overrides;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Smoke-sized work: the generator measures the service layer, not
    // the engines, so each distinct config stays milliseconds-cheap.
    let base = StudyConfig::smoke();
    let unique = ((requests as f64) * (1.0 - repeat)).round().max(1.0) as usize;
    let unique = unique.min(requests);
    let variant = |i: usize| Overrides {
        n_bits: Some(6 + (i % 3)),
        mc_trials: Some(1_000 + 500 * (i % 2) as u64),
        noise_scale: Some(8.0 + (i % 4) as f64),
        seed: Some(9_000 + i as u64),
        synth_max_t: Some(8),
        sweep_points: Some(5),
        profile_samples: Some(32),
        ..Overrides::default()
    };

    let all_ids: Vec<&'static str> = Registry::paper().list().iter().map(|e| e.id).collect();
    let mut rng = StdRng::seed_from_u64(0x10ad);
    let mut batch: Vec<RunRequest> = Vec::with_capacity(requests);
    for i in 0..requests {
        // The first `unique` requests introduce fresh configurations;
        // the rest repeat a random earlier one (with a possibly
        // different experiment selection, which the context cache
        // still serves from one lowering).
        let config_index = if i < unique {
            i
        } else {
            rng.gen_range(0..unique)
        };
        let count = rng.gen_range(3..7).min(all_ids.len());
        let mut selected: Vec<String> = Vec::with_capacity(count);
        while selected.len() < count {
            let id = all_ids[rng.gen_range(0..all_ids.len())];
            if !selected.iter().any(|s| s == id) {
                selected.push(id.to_string());
            }
        }
        batch.push(RunRequest::of(selected).with_overrides(variant(config_index)));
    }

    if connections > 1 {
        return run_load_over_tcp(&batch, unique, connections, gate);
    }

    let time_batch = |scheduler: &Scheduler| -> Result<f64, ExitCode> {
        let t0 = std::time::Instant::now();
        for (i, outcome) in scheduler.run_batch(&batch).into_iter().enumerate() {
            if let Err(e) = outcome {
                eprintln!("load request {i} rejected: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
        Ok(t0.elapsed().as_secs_f64())
    };

    println!(
        "load generator: {requests} requests, {unique} distinct configs \
         ({:.0}% repeats), {} worker threads",
        100.0 * (1.0 - unique as f64 / requests as f64),
        qods_service::pool::host_threads(),
    );
    // Cold service: no cache — every request recomputes from scratch,
    // the way the old one-shot `Registry::run_*` API had to.
    let cold = Scheduler::with_options(base.clone(), qods_service::pool::host_threads(), false);
    let cold_s = match time_batch(&cold) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!(
        "  cold service:    {cold_s:.3}s  ({:.1} req/s, {} lowerings, 0% cache hits)",
        requests as f64 / cold_s,
        cold.pool().stats().context_misses,
    );
    // Warm service: same batch through the content-addressed cache.
    // The first pass fills the cache (it still computes each of the
    // `unique` configurations once); the second pass is the
    // steady-state throughput a long-running service sustains on
    // repeat-heavy traffic.
    let warm = Scheduler::with_options(base, qods_service::pool::host_threads(), true);
    let fill_s = match time_batch(&warm) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let fill_stats = warm.pool().stats();
    println!(
        "  warm, 1st pass:  {fill_s:.3}s  ({:.1} req/s, {} lowerings, \
         {:.0}% context hits, {:.0}% output hits)",
        requests as f64 / fill_s,
        warm.pool().total_lowering_runs(),
        100.0 * fill_stats.context_hits as f64
            / (fill_stats.context_hits + fill_stats.context_misses) as f64,
        100.0 * fill_stats.output_hit_rate(),
    );
    let warm_s = match time_batch(&warm) {
        Ok(s) => s,
        Err(code) => return code,
    };
    println!(
        "  warm, steady:    {warm_s:.3}s  ({:.1} req/s, {} lowerings total)",
        requests as f64 / warm_s,
        warm.pool().total_lowering_runs(),
    );
    let first_ratio = cold_s / fill_s;
    let ratio = cold_s / warm_s;
    println!("  speedup: {first_ratio:.1}x cache-filling, {ratio:.1}x steady-state (vs cold)");
    match gate {
        Some(need) if ratio < need => {
            eprintln!("load gate FAILED: {ratio:.2}x < required {need:.2}x");
            ExitCode::FAILURE
        }
        Some(need) => {
            println!("load gate OK: {ratio:.2}x >= {need:.2}x");
            ExitCode::SUCCESS
        }
        None => ExitCode::SUCCESS,
    }
}

/// The TCP arm of the load generator: the cold/warm passes of
/// [`run_load_generator`], but every request travels a real socket
/// through the `qods-net` server — so the numbers include framing,
/// admission, and in-flight coalescing, which the in-process arm
/// cannot exercise.
fn run_load_over_tcp(
    batch: &[RunRequest],
    unique: usize,
    connections: usize,
    gate: Option<f64>,
) -> ExitCode {
    use qods_bench::perf::LatencyHistogram;
    use qods_net::{Client, NetServer, ServeCore, ServeOptions, StatsLine};
    use std::net::SocketAddr;
    use std::sync::Arc;
    use std::thread::JoinHandle;

    let requests = batch.len();
    let lines: Arc<Vec<String>> = Arc::new(batch.iter().map(qods_net::protocol::render).collect());

    let start = |caching: bool| -> (SocketAddr, JoinHandle<()>, Arc<ServeCore>) {
        let scheduler = Scheduler::with_options(
            StudyConfig::smoke(),
            qods_service::pool::host_threads(),
            caching,
        );
        let core = Arc::new(ServeCore::new(
            scheduler,
            ServeOptions {
                // Every connection must admit at once: the generator
                // measures throughput, not shedding.
                max_inflight: 2 * connections,
                ..ServeOptions::default()
            },
        ));
        let server = NetServer::bind(Arc::clone(&core), "127.0.0.1:0").expect("bind load server");
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || server.serve().expect("load server serves"));
        (addr, handle, core)
    };

    // One timed pass: the batch split round-robin across the client
    // connections, each roundtrip recorded into the shared histogram.
    // Transient failures (overloaded sheds, resets) are retried with
    // backoff; the retry count is the robustness counter reported
    // below.
    let retries = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let one_pass = |addr: SocketAddr, latency: &Arc<LatencyHistogram>| -> Result<f64, ExitCode> {
        let t0 = std::time::Instant::now();
        let workers: Vec<JoinHandle<Result<(), String>>> = (0..connections)
            .map(|c| {
                let lines = Arc::clone(&lines);
                let latency = Arc::clone(latency);
                let retries = Arc::clone(&retries);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
                    for line in lines.iter().skip(c).step_by(connections) {
                        let t = std::time::Instant::now();
                        let response = client
                            .roundtrip_retrying(line)
                            .map_err(|e| e.to_string())?
                            .ok_or_else(|| "server closed the connection".to_string())?;
                        latency.record(t.elapsed());
                        if !response.contains("\"event\":\"result\"") {
                            return Err(format!("request rejected: {response}"));
                        }
                    }
                    retries.fetch_add(client.retries(), std::sync::atomic::Ordering::Relaxed);
                    Ok(())
                })
            })
            .collect();
        let mut failed = false;
        for w in workers {
            if let Err(e) = w.join().expect("load client thread") {
                eprintln!("load client failed: {e}");
                failed = true;
            }
        }
        if failed {
            return Err(ExitCode::FAILURE);
        }
        Ok(t0.elapsed().as_secs_f64())
    };

    // A fresh probe connection per stats read; the counters must not
    // include the probe's own traffic beyond its connection.
    let read_stats = |addr: SocketAddr| -> StatsLine {
        let mut probe = Client::connect(addr).expect("connect stats probe");
        probe.stats().expect("stats verb answers")
    };
    let stop = |addr: SocketAddr, server: JoinHandle<()>| {
        Client::connect(addr)
            .expect("connect for shutdown")
            .shutdown()
            .expect("shutdown acknowledged");
        server.join().expect("load server exits");
    };

    println!(
        "load generator: {requests} requests over TCP, {unique} distinct configs \
         ({:.0}% repeats), {connections} connections, {} worker threads",
        100.0 * (1.0 - unique as f64 / requests as f64),
        qods_service::pool::host_threads(),
    );

    let latency = Arc::new(LatencyHistogram::new());

    // Cold service: no cache, so only *in-flight* coalescing can save
    // a duplicate — exactly the serving layer's contribution.
    let (addr, server, _core) = start(false);
    let cold_s = match one_pass(addr, &latency) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let cold_stats = read_stats(addr);
    stop(addr, server);
    println!(
        "  cold service:    {cold_s:.3}s  ({:.1} req/s, {} executed, {} coalesced in flight)",
        requests as f64 / cold_s,
        cold_stats.executed,
        cold_stats.coalesced,
    );

    // Warm service: fill pass, then the steady-state pass a
    // long-running server sustains on repeat-heavy traffic.
    let (addr, server, _core) = start(true);
    let fill_s = match one_pass(addr, &latency) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let fill_stats = read_stats(addr);
    println!(
        "  warm, 1st pass:  {fill_s:.3}s  ({:.1} req/s, {} executed, {} coalesced, \
         {:.0}% context hits)",
        requests as f64 / fill_s,
        fill_stats.executed,
        fill_stats.coalesced,
        100.0 * fill_stats.context_hits as f64
            / (fill_stats.context_hits + fill_stats.context_misses).max(1) as f64,
    );
    let warm_s = match one_pass(addr, &latency) {
        Ok(s) => s,
        Err(code) => return code,
    };
    let warm_stats = read_stats(addr);
    stop(addr, server);
    println!(
        "  warm, steady:    {warm_s:.3}s  ({:.1} req/s)",
        requests as f64 / warm_s,
    );

    let summary = latency.summary();
    println!(
        "  latency over {} roundtrips: p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        summary.count,
        summary.p50_us / 1e3,
        summary.p99_us / 1e3,
        summary.max_us / 1e3,
    );
    println!(
        "  robustness: {} panics caught, {} deadlines exceeded, {} client retries, \
         {} lines rejected",
        cold_stats.robustness.panics_caught + warm_stats.robustness.panics_caught,
        cold_stats.robustness.deadline_exceeded + warm_stats.robustness.deadline_exceeded,
        retries.load(std::sync::atomic::Ordering::Relaxed),
        cold_stats.robustness.lines_rejected + warm_stats.robustness.lines_rejected,
    );
    let first_ratio = cold_s / fill_s;
    let ratio = cold_s / warm_s;
    println!("  speedup: {first_ratio:.1}x cache-filling, {ratio:.1}x steady-state (vs cold)");
    match gate {
        Some(need) if ratio < need => {
            eprintln!("load gate FAILED: {ratio:.2}x < required {need:.2}x");
            ExitCode::FAILURE
        }
        Some(need) => {
            println!("load gate OK: {ratio:.2}x >= {need:.2}x");
            ExitCode::SUCCESS
        }
        None => ExitCode::SUCCESS,
    }
}

/// Runs the Monte-Carlo perf smoke (`--bench-json` / `--bench-check`).
fn run_bench_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let trials = if quick {
        perf::QUICK_TRIALS
    } else {
        perf::SMOKE_TRIALS
    };
    let report = perf::montecarlo_smoke(trials, perf::SMOKE_REPS);
    print!("{}", perf::render_report(&report));
    let out = if quick {
        Path::new("results/BENCH_montecarlo.json")
    } else {
        Path::new("BENCH_montecarlo.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::McBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_against(&report, &baseline, 2.0) {
        Ok(verdict) => {
            println!("perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the Fig 15 sweep perf smoke (`--bench-json sweep` /
/// `--bench-check-sweep`).
fn run_sweep_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let areas = if quick {
        perf::QUICK_SWEEP_AREAS
    } else {
        perf::SWEEP_AREAS
    };
    let report = perf::sweep_smoke(areas, perf::SWEEP_REPS);
    print!("{}", perf::render_sweep_report(&report));
    let out = if quick {
        Path::new("results/BENCH_sweep.json")
    } else {
        Path::new("BENCH_sweep.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::SweepBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_sweep_against(&report, &baseline, 2.0) {
        Ok(verdict) => {
            println!("sweep perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("sweep perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the kernel-compile perf smoke (`--bench-json compile` /
/// `--bench-check-compile`): cold-disk vs warm-disk full lowering,
/// gated on zero warm recomputes and the disk speedup.
fn run_compile_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let width = if quick {
        perf::QUICK_COMPILE_WIDTH
    } else {
        perf::COMPILE_WIDTH
    };
    let report = perf::compile_smoke(width, perf::COMPILE_REPS);
    print!("{}", perf::render_compile_report(&report));
    let out = if quick {
        Path::new("results/BENCH_compile.json")
    } else {
        Path::new("BENCH_compile.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::CompileBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_compile_against(&report, &baseline, 2.0, 1.2) {
        Ok(verdict) => {
            println!("compile perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("compile perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the concurrent-serving perf smoke (`--bench-json serve` /
/// `--bench-check-serve`): 8 lockstep connections vs 1 sequential one
/// against cache-off TCP servers, gated on exactly-once execution of
/// coalesced duplicates and the >= 3x concurrency-scaling floor.
fn run_serve_smoke(quick: bool, baseline_path: Option<&str>) -> ExitCode {
    let rounds = if quick {
        perf::QUICK_SERVE_ROUNDS
    } else {
        perf::SERVE_ROUNDS
    };
    let report = perf::serve_smoke(perf::SERVE_CONNECTIONS, rounds);
    print!("{}", perf::render_serve_report(&report));
    let out = if quick {
        Path::new("results/BENCH_serve.json")
    } else {
        Path::new("BENCH_serve.json")
    };
    if let Err(e) = write_json(out, &report) {
        eprintln!("failed to write {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", out.display());
    let Some(path) = baseline_path else {
        return ExitCode::SUCCESS;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: perf::ServeBenchReport = match serde_json::from_str(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("cannot parse baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match perf::check_serve_against(&report, &baseline, 2.0, 3.0) {
        Ok(verdict) => {
            println!("serve perf gate OK: {verdict}");
            ExitCode::SUCCESS
        }
        Err(verdict) => {
            eprintln!("serve perf gate FAILED: {verdict}");
            ExitCode::FAILURE
        }
    }
}
