//! Regenerates every table and figure of "Running a Quantum Circuit at
//! the Speed of Data".
//!
//! ```text
//! cargo run -p qods-bench --bin repro --release            # everything
//! cargo run -p qods-bench --bin repro --release -- quick   # smoke config
//! cargo run -p qods-bench --bin repro --release -- fig4    # one experiment
//! ```
//!
//! Output: the paper-layout report on stdout, plus `results/repro.json`
//! and per-figure CSVs under `results/`.

use qods_bench::{write_json, write_series_csv};
use qods_core::report::render;
use qods_core::study::{Study, StudyConfig};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let filter: Vec<&String> = args.iter().filter(|a| a.as_str() != "quick").collect();

    let config = if quick {
        StudyConfig::smoke()
    } else {
        StudyConfig::default()
    };
    let study = Study::new(config);

    if filter.is_empty() {
        let t0 = std::time::Instant::now();
        let out = study.run_all();
        println!("{}", render(&out));
        let results = Path::new("results");
        write_json(&results.join("repro.json"), &out).expect("write results/repro.json");
        write_series_csv(results, "fig7", &out.fig7).expect("write fig7 csv");
        write_series_csv(results, "fig8", &out.fig8).expect("write fig8 csv");
        for panel in &out.fig15 {
            let name: String = panel
                .name
                .chars()
                .map(|c| if c.is_alphanumeric() { c } else { '_' })
                .collect();
            write_series_csv(results, &format!("fig15_{name}"), &panel.curves)
                .expect("write fig15 csv");
        }
        eprintln!(
            "wrote results/repro.json and figure CSVs in {:?}",
            t0.elapsed()
        );
        return;
    }

    // Single-experiment mode.
    let benchmarks = study.benchmarks();
    for id in filter {
        match id.as_str() {
            "table1" | "table4" => {
                let t = study.latency_table();
                println!(
                    "t_1q={} t_2q={} t_meas={} t_prep={} t_move={} t_turn={} (us)",
                    t.t_1q, t.t_2q, t.t_meas, t.t_prep, t.t_move, t.t_turn
                );
            }
            "table2" | "table3" => {
                let (t2, t3, nt) = study.run_characterization(&benchmarks);
                for r in t2 {
                    println!(
                        "{}: data {:.0} ({:.1}%) interact {:.0} ({:.1}%) prep {:.0} ({:.1}%)",
                        r.name,
                        r.data_op_us,
                        100.0 * r.shares.0,
                        r.qec_interact_us,
                        100.0 * r.shares.1,
                        r.ancilla_prep_us,
                        100.0 * r.shares.2
                    );
                }
                for r in t3 {
                    println!("{}: zero {:.1}/ms pi8 {:.1}/ms", r.name, r.zero_per_ms, r.pi8_per_ms);
                }
                for (n, f) in nt {
                    println!("{n}: {:.1}% non-transversal", 100.0 * f);
                }
            }
            "table5" | "table6" | "table7" | "table8" | "fig11" => {
                let f = study.run_factories();
                println!(
                    "simple: {:.0} us, {} MB, {:.1}/ms | zero: {} MB @ {:.1}/ms | pi8: {} MB @ {:.1}/ms",
                    f.simple.0, f.simple.1, f.simple.2, f.zero.2, f.zero.3, f.pi8.2, f.pi8.3
                );
            }
            "table9" => {
                for r in study.run_table9(&benchmarks) {
                    println!(
                        "{}: data {:.0} ({:.1}%) qec {:.1} ({:.1}%) pi8 {:.1} ({:.1}%)",
                        r.name,
                        r.data.0,
                        100.0 * r.data.1,
                        r.qec.0,
                        100.0 * r.qec.1,
                        r.pi8.0,
                        100.0 * r.pi8.1
                    );
                }
            }
            "fig4" => {
                for r in study.run_fig4() {
                    println!(
                        "{}: uncorrectable {:.3e} dirty {:.3e} discard {:.4} (paper {:.1e})",
                        r.strategy, r.uncorrectable_rate, r.dirty_rate, r.discard_rate, r.paper_rate
                    );
                }
            }
            "fig6" => {
                for k in 3..=12u8 {
                    let a = qods_core::synth::cascade::analyze_cascade(k);
                    println!("k={k}: E[CX]={:.3} factories={}", a.expected_cx, a.factories);
                }
            }
            "fig7" => {
                for s in study.run_fig7(&benchmarks) {
                    let peak = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
                    println!("{}: peak in-flight zeros {:.0}", s.label, peak);
                }
            }
            "fig8" => {
                for s in study.run_fig8(&benchmarks) {
                    let lo = s.points.first().expect("points");
                    let hi = s.points.last().expect("points");
                    println!(
                        "{}: {:.2e} us @ {:.1}/ms -> {:.2e} us @ {:.1}/ms",
                        s.label, lo.1, lo.0, hi.1, hi.0
                    );
                }
            }
            "fig15" | "headline" => {
                for p in study.run_fig15(&benchmarks) {
                    println!(
                        "{}: speedup {:.1}x, QLA area penalty {:.0}x, CQLA plateau {:.1}x",
                        p.name, p.max_speedup, p.qla_area_penalty, p.cqla_plateau_ratio
                    );
                }
            }
            other => eprintln!("unknown experiment id: {other}"),
        }
    }
}
