//! Monte-Carlo engine benchmarks: packed-frame ops, the geometric
//! skip-sampler against exact per-op sampling, and the full Fig 4
//! `evaluate_prep` panel (the workload behind the committed
//! `BENCH_montecarlo.json`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use qods_phys::error_model::{ErrorModel, FaultSampler, FaultSampling};
use qods_phys::frame::PauliFrame;
use qods_phys::montecarlo::{run_trials, TrialArena, TrialOutcome};
use qods_phys::ops::{PhysOp, PhysOpKind};
use qods_phys::pauli::Pauli;
use qods_steane::eval::evaluate_prep;
use qods_steane::prep::PrepStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Packed-frame primitive ops: conjugation on clean and dirty frames,
/// block mask reads, and batched transversal rounds.
fn bench_frame_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame");
    let ops: Vec<PhysOp> = (0..64)
        .map(|i| match i % 4 {
            0 => PhysOp::h(i % 28),
            1 => PhysOp::cx(i % 28, (i + 1) % 28),
            2 => PhysOp::cz(i % 28, (i + 3) % 28),
            _ => PhysOp::Gate1(qods_phys::ops::Gate1::S, i % 28),
        })
        .collect();
    group.bench_function("apply_64ops_clean", |b| {
        let mut f = PauliFrame::new(28, ErrorModel::noiseless());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            for op in &ops {
                black_box(f.apply(op, &mut rng));
            }
        })
    });
    group.bench_function("apply_64ops_dirty", |b| {
        let mut f = PauliFrame::new(28, ErrorModel::noiseless());
        f.inject(0, Pauli::Y);
        f.inject(13, Pauli::X);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            for op in &ops {
                black_box(f.apply(op, &mut rng));
            }
        })
    });
    group.bench_function("cx_transversal_batch", |b| {
        let mut f = PauliFrame::new(28, ErrorModel::paper());
        let mut rng = StdRng::seed_from_u64(1);
        let pairs: Vec<(usize, usize)> = (0..7).map(|i| (i, i + 7)).collect();
        b.iter(|| f.gate2_batch(qods_phys::ops::Gate2::Cx, black_box(&pairs), &mut rng))
    });
    group.bench_function("x_mask7", |b| {
        let mut f = PauliFrame::new(28, ErrorModel::noiseless());
        f.inject(3, Pauli::X);
        b.iter(|| black_box(f.x_mask7(&[0, 1, 2, 3, 4, 5, 6])))
    });
    group.finish();
}

/// The fault sampler: exact per-op Bernoulli vs geometric skip, over
/// 1000 two-qubit ops at the paper's gate error rate.
fn bench_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampler_1000ops");
    for (label, sampling) in [
        ("exact", FaultSampling::Exact),
        ("skip", FaultSampling::Skip),
    ] {
        group.bench_function(label, |b| {
            let mut s = FaultSampler::new(ErrorModel::paper().with_sampling(sampling));
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut faults = 0u32;
                for _ in 0..1000 {
                    faults += s.fault_at(PhysOpKind::TwoQubitGate, &mut rng) as u32;
                }
                black_box(faults)
            })
        });
    }
    group.finish();
}

/// Allocation-free trial turnaround through the arena runner.
fn bench_runner(c: &mut Criterion) {
    c.bench_function("run_trials_arena_10k", |b| {
        b.iter(|| {
            run_trials(10_000, 3, |rng, arena: &mut TrialArena| {
                let (frame, flips) = arena.frame_and_flips(7, ErrorModel::paper());
                frame.run(
                    &[PhysOp::Prep(0), PhysOp::cx(0, 1), PhysOp::measure_z(1)],
                    rng,
                    flips,
                );
                TrialOutcome::Accepted {
                    logical_error: flips[0],
                }
            })
        })
    });
}

/// The Fig 4 panel at paper-default rates — the headline workload the
/// ISSUE's >=5x criterion is measured on.
fn bench_evaluate_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_prep_10k");
    for s in PrepStrategy::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, &s| {
            b.iter(|| evaluate_prep(s, black_box(ErrorModel::paper()), 10_000, 7, 1).error_rate())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_frame_ops,
    bench_sampler,
    bench_runner,
    bench_evaluate_prep
);
criterion_main!(benches);
