//! Table 5: zero-factory functional unit characteristics.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::factory::zero::ZeroFactory;
use qods_core::phys::latency::LatencyTable;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let t = LatencyTable::ion_trap();
    for u in ZeroFactory::units() {
        println!(
            "[table5] {:<16} {} = {:.0} us, bw in {:.1} out {:.1} /ms, area {}",
            u.name,
            u.latency,
            u.latency_us(&t),
            u.bw_in_per_ms(&t),
            u.bw_out_per_ms(&t),
            u.area
        );
    }
    c.bench_function("table5_unit_bandwidths", |b| {
        b.iter(|| {
            ZeroFactory::units()
                .iter()
                .map(|u| u.bw_out_per_ms(black_box(&t)))
                .sum::<f64>()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
