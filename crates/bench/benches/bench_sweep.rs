//! The Fig 15 sweep as a criterion bench: context construction, one
//! full four-architecture sweep (sequential and worker-pool), and the
//! per-point simulation cost the sweep amortizes.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::arch::machine::Arch;
use qods_core::arch::simulator::SimContext;
use qods_core::arch::sweep::{area_sweep_in, host_threads, log_areas, speedup_summary_from_curves};
use qods_core::kernels::qrca_lowered;
use std::hint::black_box;

fn archs(n: usize) -> [Arch; 4] {
    Arch::fig15_panel(n)
}

fn bench(c: &mut Criterion) {
    let circ = qrca_lowered(32);
    let areas = log_areas(200.0, 3e6, 13);
    let ctx = SimContext::new(&circ);
    let n = circ.n_qubits();

    c.bench_function("sweep_context_build_qrca32", |b| {
        b.iter(|| SimContext::new(black_box(&circ)))
    });
    c.bench_function("sweep_point_cqla_qrca32", |b| {
        b.iter(|| {
            ctx.simulate(Arch::default_cqla(n), black_box(1e5))
                .makespan_us
        })
    });
    c.bench_function("sweep_full_serial_qrca32", |b| {
        b.iter(|| {
            let curves = area_sweep_in(&ctx, &archs(n), &areas, 1);
            speedup_summary_from_curves(black_box(&curves)).max_speedup
        })
    });
    let threads = host_threads();
    c.bench_function("sweep_full_pooled_qrca32", |b| {
        b.iter(|| {
            let curves = area_sweep_in(&ctx, &archs(n), &areas, threads);
            speedup_summary_from_curves(black_box(&curves)).max_speedup
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
