//! Registry `run_all`: parallel vs sequential wall-clock on the smoke
//! config (each iteration uses a fresh context, so benchmark lowering
//! is included in both paths).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::experiment::StudyContext;
use qods_core::registry::Registry;
use qods_core::study::StudyConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let registry = Registry::paper();
    let seq = {
        let ctx = StudyContext::new(StudyConfig::smoke());
        let t0 = std::time::Instant::now();
        let records = registry.run_all_sequential(&ctx);
        (t0.elapsed(), records.len())
    };
    let par = {
        let ctx = StudyContext::new(StudyConfig::smoke());
        let t0 = std::time::Instant::now();
        let records = registry.run_all(&ctx);
        (t0.elapsed(), records.len())
    };
    println!(
        "[run_all] smoke config, cold context: sequential {:?} vs parallel {:?} ({} experiments)",
        seq.0, par.0, seq.1
    );
    c.bench_function("run_all_sequential_smoke", |b| {
        b.iter(|| {
            let ctx = StudyContext::new(black_box(StudyConfig::smoke()));
            registry.run_all_sequential(&ctx).len()
        })
    });
    c.bench_function("run_all_parallel_smoke", |b| {
        b.iter(|| {
            let ctx = StudyContext::new(black_box(StudyConfig::smoke()));
            registry.run_all(&ctx).len()
        })
    });
    c.bench_function("run_all_parallel_smoke_warm_context", |b| {
        let ctx = StudyContext::new(StudyConfig::smoke());
        ctx.benchmarks();
        b.iter(|| registry.run_all(&ctx).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
