//! Table 8: pi/8 factory bandwidth matching (counts, 403 MB, 18.3/ms).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::factory::pi8::Pi8Factory;

fn bench(c: &mut Criterion) {
    let f = Pi8Factory::paper().bandwidth_matched();
    let counts: Vec<String> = f
        .stages
        .iter()
        .map(|s| format!("{} x{}", s.unit.name, s.count))
        .collect();
    println!(
        "[table8] {}; functional {} + crossbar {} = {} MB; {:.2} anc/ms  [paper: 147+256=403, 18.3]",
        counts.join(", "), f.functional_area(), f.crossbar_area(), f.total_area(), f.throughput_per_ms
    );
    assert_eq!(f.total_area(), 403);
    c.bench_function("table8_bandwidth_matching", |b| {
        b.iter(|| Pi8Factory::paper().bandwidth_matched().total_area())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
