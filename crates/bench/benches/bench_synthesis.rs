//! Supporting bench: Fowler-style search cost vs T-count budget.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qods_core::synth::search::Synthesizer;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis_rz_pi16");
    for max_t in [6u32, 10, 12] {
        let synth = Synthesizer::with_budget(max_t, 0.0);
        let seq = synth.rz_pi_over_2k(4, false);
        println!(
            "[synth] max_t={max_t}: distance {:.3e}, T-count {}",
            seq.distance, seq.t_count
        );
        group.bench_with_input(BenchmarkId::from_parameter(max_t), &max_t, |b, _| {
            b.iter(|| synth.rz_pi_over_2k(black_box(4), false).distance)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
