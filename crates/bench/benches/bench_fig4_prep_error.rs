//! Fig 4: Monte-Carlo error rates of the preparation circuits.
//! (Inflated noise so the bench-sized run resolves the hierarchy.)
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::phys::error_model::ErrorModel;
use qods_core::steane::eval::{evaluate_all, evaluate_prep};
use qods_core::steane::prep::PrepStrategy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = ErrorModel::paper().scaled(10.0);
    for e in evaluate_all(model, 50_000, 7, 8) {
        println!(
            "[fig4] {:<20} uncorrectable {:.3e} dirty {:.3e} discard {:.4} (paper at 1x: {:.1e})",
            e.strategy.name(),
            e.error_rate(),
            e.dirty_rate(),
            e.discard_rate(),
            e.strategy.paper_error_rate()
        );
    }
    c.bench_function("fig4_basic_prep_1k_trials", |b| {
        b.iter(|| evaluate_prep(PrepStrategy::Basic, black_box(model), 1_000, 7, 1).error_rate())
    });
    c.bench_function("fig4_verify_and_correct_1k_trials", |b| {
        b.iter(|| {
            evaluate_prep(
                PrepStrategy::VerifyAndCorrect,
                black_box(model),
                1_000,
                7,
                1,
            )
            .error_rate()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
