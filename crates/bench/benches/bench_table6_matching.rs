//! Table 6: zero-factory bandwidth matching (counts, areas, 10.5/ms).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::factory::zero::ZeroFactory;

fn bench(c: &mut Criterion) {
    let f = ZeroFactory::paper().bandwidth_matched();
    let counts: Vec<String> = f
        .stages
        .iter()
        .map(|s| format!("{} x{}", s.unit.name, s.count))
        .collect();
    println!(
        "[table6] {}; functional {} + crossbar {} = {} MB; {:.2} anc/ms  [paper: 130+168=298, 10.5]",
        counts.join(", "), f.functional_area(), f.crossbar_area(), f.total_area(), f.throughput_per_ms
    );
    assert_eq!(f.total_area(), 298);
    c.bench_function("table6_bandwidth_matching", |b| {
        b.iter(|| ZeroFactory::paper().bandwidth_matched().total_area())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
