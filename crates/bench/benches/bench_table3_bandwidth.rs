//! Table 3: required ancilla bandwidths at the speed of data.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::circuit::characterize::characterize;
use qods_core::kernels::{qcla_lowered, qft_lowered, qrca_lowered, SynthAdapter};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let synth = SynthAdapter::with_budget(12, 1e-2);
    for circ in [qrca_lowered(32), qcla_lowered(32), qft_lowered(32, &synth)] {
        let r = characterize(&circ);
        println!(
            "[table3] {}: zero {:.1}/ms pi8 {:.1}/ms  [paper: QRCA 34.8/7.0, QCLA 306.1/62.7, QFT 36.8/8.6]",
            r.name, r.bandwidth.zero_per_ms, r.bandwidth.pi8_per_ms
        );
    }
    let qft = qft_lowered(32, &synth);
    c.bench_function("table3_bandwidth_qft32", |b| {
        b.iter(|| characterize(black_box(&qft)).bandwidth.zero_per_ms)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
