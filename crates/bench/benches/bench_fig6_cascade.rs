//! Fig 6 / §4.4.2: cascade pi/2^k analysis and synthesis comparison.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::phys::latency::LatencyTable;
use qods_core::synth::cascade::{analyze_cascade, compare_with_synthesis};
use qods_core::synth::search::Synthesizer;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let t = LatencyTable::ion_trap();
    let synth = Synthesizer::with_budget(10, 1e-2);
    for k in [3u8, 5, 8] {
        let a = analyze_cascade(k);
        let seq = synth.rz_pi_over_2k(k, false);
        let (cas, syn) = compare_with_synthesis(k, &seq, &t);
        println!(
            "[fig6] k={k}: E[CX]={:.3}, cascade {:.0} us vs synthesized {:.0} us (T-count {}, dist {:.2e})",
            a.expected_cx, cas, syn, seq.t_count, seq.distance
        );
    }
    c.bench_function("fig6_synthesize_pi_32", |b| {
        b.iter(|| synth.rz_pi_over_2k(black_box(5), false).t_count)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
