//! Fig 7: in-flight encoded-zero demand profiles.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::circuit::characterize::demand_profile;
use qods_core::circuit::latency_model::CharacterizationModel;
use qods_core::kernels::{qcla_lowered, qrca_lowered};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = CharacterizationModel::ion_trap();
    for circ in [qrca_lowered(32), qcla_lowered(32)] {
        let prof = demand_profile(&circ, &model, 512);
        let peak = prof.iter().map(|p| p.zeros_in_flight).fold(0.0, f64::max);
        let avg = prof.iter().map(|p| p.zeros_in_flight).sum::<f64>() / prof.len() as f64;
        println!(
            "[fig7] {}: avg in-flight {:.1}, peak {:.0}",
            circ.name, avg, peak
        );
    }
    let qrca = qrca_lowered(32);
    c.bench_function("fig7_demand_profile_qrca32", |b| {
        b.iter(|| demand_profile(black_box(&qrca), &model, 512).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
