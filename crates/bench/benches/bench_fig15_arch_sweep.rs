//! Fig 15: architecture comparison sweep (and the >5x headline).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::arch::machine::Arch;
use qods_core::arch::simulator::simulate;
use qods_core::arch::sweep::{log_areas, speedup_summary};
use qods_core::kernels::{qcla_lowered, qrca_lowered};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let areas = log_areas(200.0, 3e6, 13);
    for circ in [qrca_lowered(32), qcla_lowered(32)] {
        let s = speedup_summary(&circ, &areas);
        println!(
            "[fig15] {}: max speedup {:.1}x @ area {:.1e}; QLA area penalty {:.0}x; CQLA plateau {:.1}x FM",
            circ.name, s.max_speedup, s.area_at_max, s.qla_area_penalty,
            s.cqla_plateau_us / s.fm_plateau_us
        );
    }
    let circ = qrca_lowered(32);
    c.bench_function("fig15_simulate_fm_qrca32", |b| {
        b.iter(|| simulate(black_box(&circ), Arch::FullyMultiplexed, 1e5).makespan_us)
    });
    c.bench_function("fig15_simulate_cqla_qrca32", |b| {
        b.iter(|| simulate(black_box(&circ), Arch::default_cqla(97), 1e5).makespan_us)
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
