//! Table 1 / Table 4: the physical latency model (and symbolic
//! latency evaluation speed).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::phys::latency::{LatencyTable, SymbolicLatency};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let t = LatencyTable::ion_trap();
    println!(
        "[table1/table4] t_1q={} t_2q={} t_meas={} t_prep={} t_move={} t_turn={}",
        t.t_1q, t.t_2q, t.t_meas, t.t_prep, t.t_move, t.t_turn
    );
    let lat = SymbolicLatency::new()
        .prep(1)
        .meas(2)
        .two_q(6)
        .one_q(2)
        .turn(8)
        .mov(30);
    assert_eq!(lat.eval(&t), 323.0);
    c.bench_function("table1_symbolic_eval", |b| {
        b.iter(|| black_box(lat).eval(black_box(&t)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
