//! Table 9: chip area breakdown at the speed of data.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::arch::table9::table9_row_from_bandwidths;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (name, nq, zbw, pbw) in [
        ("QRCA", 97, 34.8, 7.0),
        ("QCLA", 123, 306.1, 62.7),
        ("QFT", 32, 36.8, 8.6),
    ] {
        let r = table9_row_from_bandwidths(name, nq, zbw, pbw);
        println!(
            "[table9] {name}: data {:.0} ({:.1}%) qec {:.1} ({:.1}%) pi8 {:.1} ({:.1}%)  [paper: e.g. QRCA 679 (33.6%) 986.9 (48.8%) 354.7 (17.6%)]",
            r.data_area, 100.0 * r.data_share(), r.qec_factory_area, 100.0 * r.qec_share(),
            r.pi8_factory_area, 100.0 * r.pi8_share()
        );
    }
    c.bench_function("table9_row", |b| {
        b.iter(|| table9_row_from_bandwidths(black_box("QRCA"), 97, 34.8, 7.0).total())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
