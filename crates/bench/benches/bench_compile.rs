//! The staged compile pipeline: cold in-memory compile vs warm-store
//! fetch, plus the disk round-trip of one large artifact.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::compile::{ArtifactStore, Compiler, SynthBudget};
use qods_core::kernels::{KernelFamily, KernelSpec};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let budget = SynthBudget {
        max_t: 8,
        target_distance: 1e-2,
    };
    let spec = KernelSpec::new(KernelFamily::Qcla, 16).expect("valid");

    c.bench_function("compile_cold_qcla16", |b| {
        b.iter(|| {
            let compiler = Compiler::new(Arc::new(ArtifactStore::in_memory()), budget);
            black_box(compiler.compile(black_box(spec)).expect("compiles"))
        })
    });

    let warm = Compiler::new(Arc::new(ArtifactStore::in_memory()), budget);
    warm.compile(spec).expect("compiles");
    c.bench_function("compile_warm_mem_qcla16", |b| {
        b.iter(|| black_box(warm.compile(black_box(spec)).expect("cached")))
    });

    let dir = std::env::temp_dir().join(format!("qods_bench_compile_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget)
        .compile(spec)
        .expect("compiles");
    c.bench_function("compile_warm_disk_qcla16", |b| {
        b.iter(|| {
            // Fresh in-process store every iteration: measures the
            // disk deserialization path a cold process pays.
            let compiler = Compiler::new(Arc::new(ArtifactStore::persistent(&dir)), budget);
            black_box(compiler.compile(black_box(spec)).expect("cached"))
        })
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
