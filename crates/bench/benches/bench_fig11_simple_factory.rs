//! Fig 11 / §4.3: the simple ancilla factory (323 us, 90 MB, 3.1/ms).
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::factory::layout_gen::simple_factory_layout;
use qods_core::factory::simple::SimpleFactory;

fn bench(c: &mut Criterion) {
    let f = SimpleFactory::paper();
    println!(
        "[fig11] latency {:.0} us, area {} MB, {:.2} anc/ms  [paper: 323, 90, 3.1]",
        f.prep_latency_us(),
        f.area(),
        f.throughput_per_ms()
    );
    assert_eq!(f.area(), 90);
    c.bench_function("fig11_layout_generation", |b| {
        b.iter(|| simple_factory_layout().area())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
