//! Fig 8: execution time vs steady encoded-zero throughput.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::circuit::characterize::characterize;
use qods_core::circuit::latency_model::CharacterizationModel;
use qods_core::circuit::throughput::{execution_time_us, throughput_sweep};
use qods_core::kernels::qrca_lowered;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = CharacterizationModel::ion_trap();
    let circ = qrca_lowered(32);
    let avg = characterize(&circ).bandwidth.zero_per_ms;
    let pts = throughput_sweep(&circ, &model, avg / 30.0, avg * 30.0, 13);
    println!(
        "[fig8] QRCA-32: starved {:.2e} us @ {:.1}/ms -> plateau {:.2e} us @ {:.1}/ms (avg bw {:.1})",
        pts[0].execution_us, pts[0].zeros_per_ms,
        pts.last().unwrap().execution_us, pts.last().unwrap().zeros_per_ms, avg
    );
    c.bench_function("fig8_single_point_qrca32", |b| {
        b.iter(|| execution_time_us(black_box(&circ), &model, black_box(avg)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
