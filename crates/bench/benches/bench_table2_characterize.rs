//! Table 2: latency breakdown of the three benchmarks.
use criterion::{criterion_group, criterion_main, Criterion};
use qods_core::circuit::characterize::characterize;
use qods_core::kernels::{qcla_lowered, qrca_lowered};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let qrca = qrca_lowered(32);
    let r = characterize(&qrca);
    println!(
        "[table2] QRCA-32: data {:.0} ({:.1}%) interact {:.0} ({:.1}%) prep {:.0} ({:.1}%)  [paper: 29508 (5.2%) 95641 (16.7%) 447726 (78.2%)]",
        r.breakdown.data_op_us, 100.0 * r.breakdown.data_op_share(),
        r.breakdown.qec_interact_us, 100.0 * r.breakdown.qec_interact_share(),
        r.breakdown.ancilla_prep_us, 100.0 * r.breakdown.ancilla_prep_share()
    );
    c.bench_function("table2_characterize_qrca32", |b| {
        b.iter(|| characterize(black_box(&qrca)))
    });
    let qcla = qcla_lowered(32);
    c.bench_function("table2_characterize_qcla32", |b| {
        b.iter(|| characterize(black_box(&qcla)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
